"""Tests for the ``python -m repro.dse`` command line."""

import json

import pytest

from repro.dse.__main__ import load_spec, main

MEMORY_SPEC = {
    "kind": "memory",
    "axes": {"subarray_rows": [256], "wer_target": [1e-9]},
    "settings": {"num_words": 100, "error_population": 5000},
    "sampler": "grid",
}


def _write_spec(tmp_path, spec):
    path = tmp_path / "spec.json"
    path.write_text(json.dumps(spec))
    return str(path)


class TestSpecValidation:
    def test_valid_memory_spec(self, tmp_path):
        spec = load_spec(_write_spec(tmp_path, MEMORY_SPEC))
        assert spec["kind"] == "memory"

    def test_missing_file(self, tmp_path):
        with pytest.raises(SystemExit, match="cannot read"):
            load_spec(str(tmp_path / "nope.json"))

    def test_invalid_json(self, tmp_path):
        path = tmp_path / "spec.json"
        path.write_text("{nope")
        with pytest.raises(SystemExit, match="not valid JSON"):
            load_spec(str(path))

    def test_unknown_kind(self, tmp_path):
        with pytest.raises(SystemExit, match="kind"):
            load_spec(_write_spec(tmp_path, {"kind": "quantum"}))

    def test_memory_needs_axes(self, tmp_path):
        with pytest.raises(SystemExit, match="axes"):
            load_spec(_write_spec(tmp_path, {"kind": "memory"}))

    def test_unknown_sampler(self, tmp_path):
        bad = dict(MEMORY_SPEC, sampler="bayesian")
        with pytest.raises(SystemExit, match="sampler"):
            load_spec(_write_spec(tmp_path, bad))

    def test_system_is_grid_only(self, tmp_path):
        bad = {"kind": "system", "sampler": "adaptive"}
        with pytest.raises(SystemExit, match="grid-only"):
            load_spec(_write_spec(tmp_path, bad))


class TestDescribe:
    def test_memory_describe(self, tmp_path, capsys):
        spec = _write_spec(tmp_path, MEMORY_SPEC)
        assert main(["describe", spec]) == 0
        out = capsys.readouterr().out
        assert "kind:      memory" in out
        assert "grid size: 1" in out
        assert "subarray_rows" in out

    def test_system_describe(self, tmp_path, capsys):
        spec = _write_spec(
            tmp_path,
            {
                "kind": "system",
                "workloads": ["bodytrack"],
                "scenarios": ["Full-SRAM"],
            },
        )
        assert main(["describe", spec]) == 0
        out = capsys.readouterr().out
        assert "kind:      system" in out
        assert "grid size: 1" in out

    def test_adaptive_describe_shows_budget(self, tmp_path, capsys):
        spec = _write_spec(
            tmp_path,
            dict(
                MEMORY_SPEC,
                sampler="adaptive",
                sampler_options={"batch": 4, "rounds": 3},
            ),
        )
        assert main(["describe", spec]) == 0
        assert "<= 12 jobs" in capsys.readouterr().out


class TestSpecRetryValidation:
    def test_valid_retry_object(self, tmp_path):
        spec = load_spec(_write_spec(
            tmp_path, dict(MEMORY_SPEC, retry={"max_attempts": 2})
        ))
        assert spec["retry"] == {"max_attempts": 2}

    def test_bad_retry_object(self, tmp_path):
        bad = dict(MEMORY_SPEC, retry={"tries": 2})
        with pytest.raises(SystemExit, match="retry"):
            load_spec(_write_spec(tmp_path, bad))

    def test_cli_flags_override_spec(self, tmp_path):
        from argparse import Namespace

        from repro.dse.__main__ import _retry_policy

        spec = dict(MEMORY_SPEC, retry={"max_attempts": 2, "backoff": 1.0})
        policy = _retry_policy(spec, Namespace(retries=5, backoff=None))
        assert policy.max_attempts == 5
        assert policy.backoff == 1.0
        assert _retry_policy(MEMORY_SPEC, Namespace(retries=None, backoff=None)) is None
        flags_only = _retry_policy(MEMORY_SPEC, Namespace(retries=None, backoff=0.5))
        assert flags_only.backoff == 0.5

    def test_invalid_flags_exit_cleanly(self):
        from argparse import Namespace

        from repro.dse.__main__ import _retry_policy

        with pytest.raises(SystemExit, match="--retries"):
            _retry_policy(MEMORY_SPEC, Namespace(retries=0, backoff=None))
        with pytest.raises(SystemExit, match="--retries"):
            _retry_policy(MEMORY_SPEC, Namespace(retries=None, backoff=-1.0))


class TestStatus:
    def test_status_without_journal_fails(self, tmp_path, capsys):
        assert main(["status", "--dir", str(tmp_path)]) == 2
        assert "no campaign journal" in capsys.readouterr().err


def _quarantined_dir(tmp_path):
    """A campaign directory whose journal holds one quarantined point."""
    from repro.dse import CampaignState, Job, campaign_key, journal_path

    job = Job("cli-boom", {"x": 1})
    state = CampaignState.open(
        journal_path(str(tmp_path)), campaign_key({"kind": "cli"}), total=2
    )
    from repro.dse import JobResult

    state.record(JobResult(job=job, ok=False, error="boom", attempts=3))
    state.quarantine(job.key, 3)
    state.close()
    return job


class TestRetrySubcommand:
    def test_retry_without_journal_fails(self, tmp_path, capsys):
        assert main(["retry", "--dir", str(tmp_path)]) == 2
        assert "no campaign journal" in capsys.readouterr().err

    def test_retry_releases_all(self, tmp_path, capsys):
        from repro.dse import CampaignState, journal_path

        _quarantined_dir(tmp_path)
        assert main(["retry", "--dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "released 1 quarantined point(s)" in out
        assert "resume" in out
        state = CampaignState.load(journal_path(str(tmp_path)))
        assert state.quarantined == set()
        assert state.done == 0  # the failed entry was cleared for re-run

    def test_retry_specific_key(self, tmp_path, capsys):
        job = _quarantined_dir(tmp_path)
        assert main(["retry", "--dir", str(tmp_path), "--key", job.key]) == 0
        assert "released 1" in capsys.readouterr().out

    def test_retry_unknown_key_fails(self, tmp_path, capsys):
        _quarantined_dir(tmp_path)
        assert main(["retry", "--dir", str(tmp_path), "--key", "feedbeef"]) == 2
        assert "not quarantined" in capsys.readouterr().err

    def test_retry_nothing_to_release(self, tmp_path, capsys):
        from repro.dse import CampaignState, campaign_key, journal_path

        CampaignState.open(
            journal_path(str(tmp_path)), campaign_key({"kind": "cli"}), total=1
        ).close()
        assert main(["retry", "--dir", str(tmp_path)]) == 0
        assert "released 0" in capsys.readouterr().out

    def test_status_reports_quarantine(self, tmp_path, capsys):
        _quarantined_dir(tmp_path)
        assert main(["status", "--dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "1 quarantined" in out
        assert "python -m repro.dse retry" in out


class TestRunResumeStatus:
    def test_run_then_status_then_resume(self, tmp_path, capsys):
        """One 1-point campaign through the whole CLI surface."""
        spec = _write_spec(tmp_path, MEMORY_SPEC)
        campaign_dir = str(tmp_path / "camp")

        assert main(["run", spec, "--dir", campaign_dir, "--quiet"]) == 0
        out = capsys.readouterr().out
        assert "campaign finished" in out
        assert "feasible: 1" in out

        assert main(["status", "--dir", campaign_dir]) == 0
        out = capsys.readouterr().out
        assert "1/1 done (100.0%)" in out

        # --json is machine-readable: exactly one JSON object, nothing
        # else on stdout (supervisors and CI parse this verbatim).
        assert main(["status", "--dir", campaign_dir, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["done"] == 1
        assert payload["failed"] == 0
        assert payload["retried"] == 0
        assert payload["quarantined"] == 0
        assert payload["leased"] == 0
        assert payload["cache_entries"] == 1

        assert main(["resume", spec, "--dir", campaign_dir, "--quiet"]) == 0
        out = capsys.readouterr().out
        assert "1 hits / 0 misses" in out

    def test_run_with_serial_executor(self, tmp_path, capsys):
        spec = _write_spec(tmp_path, MEMORY_SPEC)
        campaign_dir = str(tmp_path / "serial-camp")
        assert main([
            "run", spec, "--dir", campaign_dir, "--quiet",
            "--executor", "serial",
        ]) == 0
        assert "feasible: 1" in capsys.readouterr().out

    def test_unknown_executor_rejected_by_parser(self, tmp_path):
        spec = _write_spec(tmp_path, MEMORY_SPEC)
        with pytest.raises(SystemExit):
            main(["run", spec, "--dir", str(tmp_path), "--executor", "warp"])

    def test_worker_pull_flags_require_worker_pull(self, tmp_path):
        spec = _write_spec(tmp_path, MEMORY_SPEC)
        with pytest.raises(SystemExit, match="worker-pull"):
            main([
                "run", spec, "--dir", str(tmp_path / "c"), "--quiet",
                "--executor", "pool", "--spawn-workers", "2",
            ])
        with pytest.raises(SystemExit, match="worker-pull"):
            main([
                "run", spec, "--dir", str(tmp_path / "c"), "--quiet",
                "--lease-ttl", "5",
            ])

    def test_stall_timeout_aborts_cleanly_without_workers(
        self, tmp_path, capsys
    ):
        """A worker-pull run with no workers must not hang silently."""
        spec = _write_spec(tmp_path, MEMORY_SPEC)
        code = main([
            "run", spec, "--dir", str(tmp_path / "stall"), "--quiet",
            "--executor", "worker-pull", "--stall-timeout", "0.2",
        ])
        assert code == 3
        err = capsys.readouterr().err
        assert "campaign stalled" in err
        assert "python -m repro.dse worker" in err


class TestWorkerSubcommand:
    def test_worker_once_on_empty_queue(self, tmp_path, capsys):
        assert main(["worker", str(tmp_path), "--once"]) == 0
        assert "evaluated 0 task(s)" in capsys.readouterr().out

    def test_worker_drains_published_tasks(self, tmp_path, capsys):
        from repro.dse import Job, SELFTEST_TARGET, WorkQueue

        queue = WorkQueue(str(tmp_path))
        queue.ensure()
        for i in range(3):
            queue.publish(Job(SELFTEST_TARGET, {"x": i}))
        assert main([
            "worker", str(tmp_path), "--once", "--id", "cli-worker",
        ]) == 0
        assert "evaluated 3 task(s)" in capsys.readouterr().out

    def test_worker_rejects_bad_ttl(self, tmp_path, capsys):
        with pytest.raises(SystemExit):
            main(["worker", str(tmp_path), "--ttl", "0", "--once"])
        assert "must be > 0" in capsys.readouterr().err

    def test_worker_needs_exactly_one_of_dir_and_connect(
        self, tmp_path, capsys
    ):
        assert main(["worker"]) == 2
        assert "exactly one" in capsys.readouterr().err
        assert main([
            "worker", str(tmp_path), "--connect", "localhost:4000",
        ]) == 2
        assert "exactly one" in capsys.readouterr().err


class TestArgumentValidation:
    """Satellite: non-positive / malformed flags die with one-line errors."""

    def _rejects(self, argv, fragment, capsys):
        with pytest.raises(SystemExit):
            main(argv)
        err = capsys.readouterr().err
        assert fragment in err, err

    def test_nonpositive_lease_ttl(self, tmp_path, capsys):
        self._rejects(
            ["run", "spec.json", "--dir", str(tmp_path), "--lease-ttl", "0"],
            "must be > 0", capsys,
        )
        self._rejects(
            ["run", "spec.json", "--dir", str(tmp_path), "--lease-ttl", "-5"],
            "must be > 0", capsys,
        )

    def test_negative_spawn_workers(self, tmp_path, capsys):
        self._rejects(
            ["run", "spec.json", "--dir", str(tmp_path),
             "--spawn-workers", "-1"],
            "must be >= 0", capsys,
        )

    def test_nonpositive_retries(self, tmp_path, capsys):
        self._rejects(
            ["run", "spec.json", "--dir", str(tmp_path), "--retries", "0"],
            "must be >= 1", capsys,
        )
        self._rejects(
            ["run", "spec.json", "--dir", str(tmp_path), "--retries", "x"],
            "not an integer", capsys,
        )

    def test_malformed_connect(self, capsys):
        for bad in ("nohost", "host:", ":4000", "host:notaport", "host:0",
                    "host:70000"):
            self._rejects(
                ["worker", "--connect", bad], "invalid --connect", capsys
            )

    def test_supervise_min_above_max(self, capsys):
        assert main([
            "supervise", "--connect", "localhost:4000",
            "--min", "3", "--max", "1",
        ]) == 2
        assert "max_workers" in capsys.readouterr().err

    def test_serve_requires_port(self, tmp_path, capsys):
        with pytest.raises(SystemExit, match="--port"):
            main(["serve", "spec.json", "--dir", str(tmp_path), "--quiet"])

    def test_network_flags_require_network_executor(self, tmp_path):
        spec = _write_spec(tmp_path, MEMORY_SPEC)
        with pytest.raises(SystemExit, match="--executor network"):
            main([
                "run", spec, "--dir", str(tmp_path / "c"), "--quiet",
                "--port", "4000",
            ])


class TestMergeSubcommand:
    def test_merge_folds_workers_dirs(self, tmp_path, capsys):
        from repro.dse import ResultCache, content_key

        source = ResultCache(str(tmp_path / "worker-cache"))
        keys = [content_key("cli-merge", {"i": i}) for i in range(4)]
        for key in keys:
            source.put(key, {"result": 1})
        campaign_dir = str(tmp_path / "camp")
        assert main([
            "merge", "--dir", campaign_dir,
            "--workers-dirs", str(tmp_path / "worker-cache"),
        ]) == 0
        out = capsys.readouterr().out
        assert "merged 4 record(s)" in out
        assert "4 entries" in out
        # Idempotent re-merge.
        assert main([
            "merge", "--dir", campaign_dir,
            "--workers-dirs", str(tmp_path / "worker-cache"),
        ]) == 0
        assert "merged 0 record(s) (4 already present" in capsys.readouterr().out

    def test_run_rejects_missing_workers_dirs(self, tmp_path):
        """A typo'd --workers-dirs must fail loudly, not silently merge
        nothing and re-evaluate every remotely-computed point."""
        spec = _write_spec(tmp_path, MEMORY_SPEC)
        with pytest.raises(SystemExit, match="not a directory"):
            main([
                "run", spec, "--dir", str(tmp_path / "c"), "--quiet",
                "--workers-dirs", str(tmp_path / "ghost"),
            ])

    def test_merge_rejects_missing_source(self, tmp_path, capsys):
        assert main([
            "merge", "--dir", str(tmp_path),
            "--workers-dirs", str(tmp_path / "ghost"),
        ]) == 2
        assert "not a directory" in capsys.readouterr().err
