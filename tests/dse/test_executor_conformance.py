"""Executor conformance suite: every backend, identical campaign semantics.

The same scenarios — full campaign, cached replay, kill/resume,
retry/quarantine, Pareto extraction — run against every
:class:`~repro.dse.executors.Executor` implementation and must produce
*identical* results, journals and status payloads.  The serial
reference for each scenario is computed in a separate campaign
directory with the plain historic runner, so an executor can only pass
by agreeing with the executor-free semantics byte for byte.

The worker-pull harness runs a real worker loop (in a background
thread, so the claim/lease/heartbeat protocol is exercised end to end
in-process); subprocess workers are covered by ``test_worker_pull.py``.
"""

import os
import shutil
import threading

import pytest

from repro.dse import (
    CHAOS_TARGET,
    SELFTEST_TARGET,
    CampaignRunner,
    CampaignState,
    Job,
    NetworkExecutor,
    ProcessPoolExecutor,
    ResultCache,
    RetryPolicy,
    SerialExecutor,
    WorkerPullExecutor,
    campaign_key,
    is_timeout_error,
    pareto_front,
    run_checkpointed,
    run_network_worker,
    run_worker,
)
from test_utils import CampaignKilled, CrashingRunner

KEY = campaign_key({"kind": "executor-conformance"})

EXECUTORS = ("serial", "pool", "worker-pull", "network")

#: Status fields that must match across executors (timestamps and meta
#: are run-specific by design).
STATUS_FIELDS = (
    "total", "done", "failed", "timeouts", "remaining",
    "retried", "retries", "quarantined", "quarantine",
)


def _jobs(points=6, **extra):
    return [Job(SELFTEST_TARGET, dict({"x": i}, **extra)) for i in range(points)]


def _status_view(state):
    status = state.status()
    return {field: status[field] for field in STATUS_FIELDS}


def _summary(outcomes):
    """The comparable essence of a campaign's outcomes, input-ordered."""
    return [
        (o.ok, o.result, (o.error or "").splitlines()[:1], o.attempts)
        for o in outcomes
    ]


def _records(outcomes):
    return [
        {"value": o.result["value"], "cost": o.result["cost"]}
        for o in outcomes
        if o.ok
    ]


class ExecutorHarness:
    """One campaign directory wired to one executor implementation.

    For ``worker-pull`` a single worker loop runs in a background
    thread (one worker keeps claim ordering deterministic; multi-worker
    races are covered by the worker-pull suite).
    """

    def __init__(self, name, campaign_dir):
        self.name = name
        self.campaign_dir = str(campaign_dir)
        self.threads = []
        if name == "serial":
            self.executor = SerialExecutor()
        elif name == "pool":
            self.executor = ProcessPoolExecutor(workers=2)
        elif name == "worker-pull":
            self.executor = WorkerPullExecutor(
                self.campaign_dir, lease_ttl=10.0, poll=0.005, timeout=60
            )
            thread = threading.Thread(
                target=run_worker,
                args=(self.campaign_dir,),
                kwargs=dict(worker_id="conformance", lease_ttl=10.0, poll=0.005),
                daemon=True,
            )
            thread.start()
            self.threads.append(thread)
        elif name == "network":
            self.executor = NetworkExecutor(
                self.campaign_dir, lease_ttl=10.0, poll=0.005, timeout=60
            )
            thread = threading.Thread(
                target=run_network_worker,
                args=(self.executor.address,),
                kwargs=dict(
                    worker_id="conformance", poll=0.005, backoff=0.05,
                    reconnect_timeout=20.0,
                ),
                daemon=True,
            )
            thread.start()
            self.threads.append(thread)
        else:  # pragma: no cover - parametrisation bug
            raise ValueError(name)

    def runner(self, deadline=None):
        cache = ResultCache(os.path.join(self.campaign_dir, "cache"))
        return CampaignRunner(
            workers=2, cache=cache, executor=self.executor, deadline=deadline
        )

    def state(self, total, resume=False):
        path = os.path.join(self.campaign_dir, "journal.jsonl")
        return CampaignState.open(path, KEY, total=total, resume=resume)

    def close(self):
        self.executor.close()
        for thread in self.threads:
            thread.join(timeout=30)
        assert all(not t.is_alive() for t in self.threads)


@pytest.fixture(params=EXECUTORS)
def harness(request, tmp_path):
    instance = ExecutorHarness(request.param, tmp_path / "camp")
    yield instance
    instance.close()


def _reference(tmp_path, jobs, deadline=None, **kwargs):
    """The executor-free serial semantics, in an isolated directory."""
    ref_dir = tmp_path / "reference"
    runner = CampaignRunner(
        workers=1, cache=ResultCache(str(ref_dir / "cache")),
        deadline=deadline,
    )
    state = CampaignState.open(
        str(ref_dir / "journal.jsonl"), KEY, total=len(jobs)
    )
    outcomes = run_checkpointed(jobs, runner, state, **kwargs)
    return outcomes, state


class TestConformance:
    def test_campaign_matches_serial_reference(self, harness, tmp_path):
        """records(), Pareto front and status() identical per executor."""
        jobs = _jobs(6)
        reference, ref_state = _reference(tmp_path, jobs)

        outcomes = run_checkpointed(jobs, harness.runner(), harness.state(len(jobs)))
        assert _summary(outcomes) == _summary(reference)
        assert _records(outcomes) == _records(reference)
        assert pareto_front(_records(outcomes), ("value", "cost")) == pareto_front(
            _records(reference), ("value", "cost")
        )
        reloaded = CampaignState.load(
            os.path.join(harness.campaign_dir, "journal.jsonl")
        )
        assert _status_view(reloaded) == _status_view(ref_state)

    def test_cached_replay_is_pure_lookup(self, harness):
        """A warm re-run serves every point from the cache, identically."""
        jobs = _jobs(5)
        runner = harness.runner()
        cold = run_checkpointed(jobs, runner, harness.state(len(jobs)))
        warm = run_checkpointed(
            jobs, harness.runner(), harness.state(len(jobs), resume=True)
        )
        assert all(o.from_cache for o in warm)
        assert [o.result for o in warm] == [o.result for o in cold]

    def test_kill_resume_loses_nothing_and_reevaluates_nothing(
        self, harness, tmp_path, monkeypatch
    ):
        """Kill after 3 of 6 points, resume: every point evaluated once."""
        scratch = tmp_path / "invocations"
        monkeypatch.setenv("REPRO_DSE_SELFTEST_DIR", str(scratch))
        jobs = _jobs(6, count=True)
        reference, ref_state = _reference(tmp_path, jobs)
        for marker in scratch.iterdir():
            marker.unlink()  # reference consumed its own invocations

        state = harness.state(len(jobs))
        with pytest.raises(CampaignKilled):
            run_checkpointed(
                jobs, CrashingRunner(harness.runner(), crash_after=3), state
            )
        journaled = CampaignState.load(
            os.path.join(harness.campaign_dir, "journal.jsonl")
        )
        assert 1 <= journaled.done <= 3
        finished = set(journaled.completed)

        outcomes = run_checkpointed(
            jobs, harness.runner(), harness.state(len(jobs), resume=True)
        )
        assert _summary(outcomes) == _summary(reference)
        counts = {
            marker.name: marker.stat().st_size for marker in scratch.iterdir()
        }
        assert sorted(counts) == ["count-%d" % i for i in range(6)]
        for job in jobs:
            invocations = counts["count-%d" % job.spec["x"]]
            if harness.name == "pool" and job.key not in finished:
                # A killed pool loses its in-flight evaluations (they
                # were never journaled or cached), so an unfinished
                # point may legitimately evaluate a second time.
                assert invocations in (1, 2)
            else:
                # Serial evaluates lazily and worker-pull evaluations
                # are durable (workers write the shared cache), so a
                # kill re-evaluates *nothing* — the acceptance bar.
                assert invocations == 1
        reloaded = CampaignState.load(
            os.path.join(harness.campaign_dir, "journal.jsonl")
        )
        assert _status_view(reloaded) == _status_view(ref_state)

    def test_retry_failed_resume_reruns_failed_points(
        self, harness, tmp_path, monkeypatch
    ):
        """Regression: a resumed failed point reuses its task identity
        (``reseed=0``), so worker-pull must reopen the stale ``done``
        lease event instead of waiting forever for a claim."""
        scratch = tmp_path / "heal"
        monkeypatch.setenv("REPRO_DSE_SELFTEST_DIR", str(scratch))
        jobs = _jobs(2) + [Job(SELFTEST_TARGET, {"x": 77, "fail_first": 1})]
        first = run_checkpointed(
            jobs, harness.runner(), harness.state(len(jobs))
        )
        assert [o.ok for o in first] == [True, True, False]
        resumed = run_checkpointed(
            jobs,
            harness.runner(),
            harness.state(len(jobs), resume=True),
            retry_failed=True,
        )
        assert all(o.ok for o in resumed)
        assert resumed[2].result["value"] == 154
        assert not resumed[2].from_cache  # genuinely re-evaluated

    def test_retry_and_quarantine_identical(self, harness, tmp_path, monkeypatch):
        """Flaky points recover, hopeless points quarantine — everywhere."""
        scratch = tmp_path / "flaky"
        monkeypatch.setenv("REPRO_DSE_SELFTEST_DIR", str(scratch))
        retry = RetryPolicy(max_attempts=2, backoff=0.0)
        jobs = _jobs(3) + [
            Job(SELFTEST_TARGET, {"x": 90, "fail_first": 1}),
            Job(SELFTEST_TARGET, {"x": 91, "fail": "always"}),
        ]
        reference, ref_state = _reference(tmp_path, jobs, retry=retry)
        shutil.rmtree(str(scratch))

        outcomes = run_checkpointed(
            jobs, harness.runner(), harness.state(len(jobs)), retry=retry
        )
        assert _summary(outcomes) == _summary(reference)
        flaky = outcomes[3]
        assert flaky.ok and flaky.attempts == 2
        hopeless = outcomes[4]
        assert not hopeless.ok and hopeless.attempts == 2

        reloaded = CampaignState.load(
            os.path.join(harness.campaign_dir, "journal.jsonl")
        )
        view = _status_view(reloaded)
        assert view == _status_view(ref_state)
        assert view["quarantined"] == 1
        assert view["quarantine"] == [jobs[4].key]
        assert view["retried"] == 2  # flaky + hopeless both took a retry

    def test_hung_evaluation_reaped_retried_and_identical(
        self, harness, tmp_path, monkeypatch
    ):
        """A hang is reaped at the deadline on every executor.

        One point hangs on its first invocation only (recovers on the
        reseeded retry), one hangs forever (spends its budget and
        quarantines as a timeout) — outcomes, journal and status
        (including the ``timeouts`` count) must match the serial
        reference exactly.
        """
        scratch = tmp_path / "hang"
        monkeypatch.setenv("REPRO_DSE_SELFTEST_DIR", str(scratch))
        deadline = 0.5
        retry = RetryPolicy(max_attempts=2, backoff=0.0)
        jobs = [Job(CHAOS_TARGET, {"x": i}) for i in range(2)] + [
            Job(CHAOS_TARGET, {"x": 60, "chaos": "hang_first"}),
            Job(CHAOS_TARGET, {"x": 61, "chaos": "hang"}),
        ]
        reference, ref_state = _reference(
            tmp_path, jobs, deadline=deadline, retry=retry
        )
        shutil.rmtree(str(scratch))

        outcomes = run_checkpointed(
            jobs,
            harness.runner(deadline=deadline),
            harness.state(len(jobs)),
            retry=retry,
        )
        assert _summary(outcomes) == _summary(reference)
        recovered = outcomes[2]
        assert recovered.ok and recovered.attempts == 2
        hopeless = outcomes[3]
        assert not hopeless.ok and hopeless.attempts == 2
        assert is_timeout_error(hopeless.error)
        # Reaped within deadline + epsilon, not at the hang's own length.
        assert hopeless.elapsed < deadline + 1.0

        reloaded = CampaignState.load(
            os.path.join(harness.campaign_dir, "journal.jsonl")
        )
        view = _status_view(reloaded)
        assert view == _status_view(ref_state)
        assert view["timeouts"] == 1
        assert view["quarantine"] == [jobs[3].key]
