"""Property-based tests for the worker-pull lease protocol.

Seeded-random schedules of worker claim / heartbeat / crash / reclaim
events (mirroring ``test_journal_properties.py``) are applied both to
an in-memory reference model and — through real per-worker journal
files on disk — to :meth:`LeaseTable.replay`.  After every step the
fold of the on-disk journals must agree with the model on ownership
and completion; torn tails and shuffled replay order must not change
the outcome.

The model is deliberately plain (a dict and a set, rules spelled out
longhand) so the protocol's meaning is stated twice independently:
once here, once in :mod:`repro.dse.executors`.
"""

import os
import random

from repro.dse import LeaseTable
from repro.dse.executors import LeaseJournal, read_lease_events

WORKERS = ["w0", "w1", "w2", "w3"]
TASKS = ["t%d" % i for i in range(8)]
TTL = 10.0


class ReferenceLeases:
    """What the claim events *mean*: one owner per task, until expiry."""

    def __init__(self):
        self.owners = {}  # task -> (worker, lease expiry)
        self.completed = set()

    def owner(self, task, now):
        entry = self.owners.get(task)
        if entry is None or now >= entry[1]:
            return None
        return entry[0]

    def claim(self, task, worker, t, ttl):
        if task in self.completed:
            return False
        holder = self.owner(task, t)
        if holder is not None and holder != worker:
            return False
        self.owners[task] = (worker, t + ttl)
        return True

    def heartbeat(self, task, worker, t, ttl):
        entry = self.owners.get(task)
        if task in self.completed or entry is None or entry[0] != worker:
            return False
        self.owners[task] = (worker, t + ttl)
        return True

    def release(self, task, worker):
        entry = self.owners.get(task)
        if entry is None or entry[0] != worker:
            return False
        del self.owners[task]
        return True

    def done(self, task):
        self.completed.add(task)
        self.owners.pop(task, None)

    def reopen(self, task):
        self.completed.discard(task)
        self.owners.pop(task, None)


def _check(events, model, now):
    """The on-disk fold must agree with the model, task by task."""
    table = LeaseTable.replay(events)
    for task in TASKS:
        assert table.owner(task, now) == model.owner(task, now), task
    assert table.completed == model.completed


def _run_schedule(tmp_path, seed, steps=150):
    rng = random.Random(seed)
    leases_dir = tmp_path / ("leases-%d" % seed)
    journals = {
        worker: LeaseJournal(str(leases_dir / (worker + ".jsonl")), worker)
        for worker in WORKERS
    }
    alive = set(WORKERS)
    model = ReferenceLeases()
    events = []
    now = 1000.0

    def emit(worker, event):
        event = dict(event, t=now)
        journals[worker].append(dict(event))
        # append() adds worker/seq; mirror what landed on disk.
        events.append(dict(event, worker=worker, seq=journals[worker]._seq))

    for _ in range(steps):
        # Strictly increasing time keeps incremental application and
        # the sorted replay in the same order (tie-breaking is covered
        # by the shuffle check below).
        now += rng.uniform(0.01, TTL / 2.0)
        op = rng.choice(
            ["claim", "claim", "heartbeat", "release", "done",
             "reopen", "crash", "revive"]
        )
        task = rng.choice(TASKS)
        if op == "crash" and len(alive) > 1:
            # A crashed worker simply stops emitting events: its leases
            # expire on their own and others reclaim the tasks.
            alive.discard(rng.choice(sorted(alive)))
            continue
        if op == "revive":
            alive.add(rng.choice(WORKERS))
            continue
        worker = rng.choice(sorted(alive))
        if op == "claim":
            emit(worker, {"event": "claim", "task": task, "ttl": TTL})
            claimed = model.claim(task, worker, now, TTL)
            # Reclaim-after-expiry invariant, from the model's mouth:
            # a claim on a free-or-expired, not-completed task wins.
            if task not in model.completed:
                assert claimed == (model.owner(task, now) == worker)
        elif op == "heartbeat":
            emit(worker, {"event": "heartbeat", "task": task, "ttl": TTL})
            model.heartbeat(task, worker, now, TTL)
        elif op == "release":
            emit(worker, {"event": "release", "task": task})
            model.release(task, worker)
        elif op == "done":
            emit(worker, {"event": "done", "task": task})
            model.done(task)
        elif op == "reopen":
            emit(worker, {"event": "reopen", "task": task})
            model.reopen(task)
        disk_events = []
        for worker_id in WORKERS:
            disk_events.extend(
                read_lease_events(str(leases_dir / (worker_id + ".jsonl")))
            )
        _check(disk_events, model, now)

    # A torn final append (worker killed mid-write) is skipped, losing
    # at most that one event — everything before it still folds.
    victim = rng.choice(sorted(alive))
    path = str(leases_dir / (victim + ".jsonl"))
    if os.path.exists(path):
        with open(path, "ab") as handle:
            handle.write(b'{"event":"claim","task":"t0","wor')
        torn = read_lease_events(path)
        clean = [e for e in events if e["worker"] == victim]
        assert torn == clean

    # Replay is order-independent: any shuffle folds identically.
    shuffled = list(events)
    rng.shuffle(shuffled)
    reference_fold = LeaseTable.replay(events)
    shuffled_fold = LeaseTable.replay(shuffled)
    assert shuffled_fold.leases == reference_fold.leases
    assert shuffled_fold.completed == reference_fold.completed


def test_random_schedules_match_reference(tmp_path):
    for seed in range(8):
        _run_schedule(tmp_path, seed)


def test_long_schedule(tmp_path):
    _run_schedule(tmp_path, seed=4242, steps=500)


class TestLeaseTableRules:
    """Pointwise rules the random walk might only graze."""

    def test_claim_conflict_denied_until_expiry(self):
        table = LeaseTable()
        assert table.claim("t", "a", 0.0, 10.0)
        assert not table.claim("t", "b", 5.0, 10.0)  # lease still live
        assert table.owner("t", 5.0) == "a"
        assert table.claim("t", "b", 10.0, 10.0)  # expired: reclaim
        assert table.owner("t", 10.0) == "b"

    def test_heartbeat_extends_only_holder(self):
        table = LeaseTable()
        table.claim("t", "a", 0.0, 10.0)
        assert not table.heartbeat("t", "b", 5.0, 10.0)
        assert table.heartbeat("t", "a", 5.0, 10.0)
        assert table.expires("t") == 15.0

    def test_dead_worker_lease_reclaimed(self):
        """The acceptance scenario in miniature: claim, crash, reclaim."""
        table = LeaseTable()
        table.claim("t", "dead", 0.0, 10.0)
        # No heartbeat ever arrives; the lease runs out.
        assert table.owner("t", 9.9) == "dead"
        assert table.owner("t", 10.0) is None
        assert table.claim("t", "survivor", 12.0, 10.0)
        assert table.owner("t", 12.0) == "survivor"

    def test_done_blocks_claims_until_reopen(self):
        table = LeaseTable()
        table.claim("t", "a", 0.0, 10.0)
        table.done("t", "a")
        assert not table.claim("t", "b", 20.0, 10.0)
        table.reopen("t")
        assert table.claim("t", "b", 21.0, 10.0)

    def test_release_frees_immediately(self):
        table = LeaseTable()
        table.claim("t", "a", 0.0, 10.0)
        assert table.release("t", "a")
        assert table.claim("t", "b", 1.0, 10.0)

    def test_replay_sorts_by_time_not_arrival(self):
        """A late-read earlier claim still wins the fold."""
        events = [
            {"event": "claim", "task": "t", "worker": "b", "t": 2.0,
             "ttl": 10.0, "seq": 1},
            {"event": "claim", "task": "t", "worker": "a", "t": 1.0,
             "ttl": 10.0, "seq": 1},
        ]
        table = LeaseTable.replay(events)
        assert table.owner("t", 3.0) == "a"
