"""Tests for Pareto dominance, ranks and frontier edge cases."""

import pytest

from repro.dse import (
    Objective,
    dominance_ranks,
    dominates,
    hypervolume_proxy,
    objective_bounds,
    pareto_front,
    update_front,
)


def point(lat, energy):
    return {"latency": lat, "energy": energy}


class TestDominates:
    def test_strict_dominance(self):
        assert dominates(point(1, 1), point(2, 2), ["latency", "energy"])

    def test_partial_improvement_dominates(self):
        assert dominates(point(1, 2), point(2, 2), ["latency", "energy"])

    def test_tie_dominates_neither_way(self):
        a, b = point(1, 1), point(1, 1)
        objectives = ["latency", "energy"]
        assert not dominates(a, b, objectives)
        assert not dominates(b, a, objectives)

    def test_tradeoff_dominates_neither_way(self):
        a, b = point(1, 3), point(3, 1)
        objectives = ["latency", "energy"]
        assert not dominates(a, b, objectives)
        assert not dominates(b, a, objectives)

    def test_maximize_sense(self):
        a, b = {"throughput": 5.0}, {"throughput": 3.0}
        assert dominates(a, b, [("throughput", "max")])
        assert not dominates(b, a, [("throughput", "max")])

    def test_bad_sense_rejected(self):
        with pytest.raises(ValueError):
            Objective.parse(("x", "best"))

    def test_missing_key_raises(self):
        with pytest.raises(KeyError):
            dominates({"latency": 1.0}, {"latency": 2.0}, ["energy"])


class TestParetoFront:
    def test_empty_set(self):
        assert pareto_front([], ["latency"]) == []

    def test_single_point_is_frontier(self):
        records = [point(1, 1)]
        assert pareto_front(records, ["latency", "energy"]) == records

    def test_all_dominated_chain(self):
        records = [point(1, 1), point(2, 2), point(3, 3)]
        assert pareto_front(records, ["latency", "energy"]) == [point(1, 1)]

    def test_tradeoff_curve_all_on_front(self):
        records = [point(1, 3), point(2, 2), point(3, 1)]
        assert pareto_front(records, ["latency", "energy"]) == records

    def test_exact_ties_share_the_front(self):
        records = [point(1, 1), point(1, 1), point(2, 2)]
        assert pareto_front(records, ["latency", "energy"]) == [
            point(1, 1),
            point(1, 1),
        ]

    def test_input_order_preserved(self):
        records = [point(3, 1), point(5, 5), point(1, 3)]
        assert pareto_front(records, ["latency", "energy"]) == [
            point(3, 1),
            point(1, 3),
        ]

    def test_accessor_key(self):
        records = [{"spec": 1, "point": point(1, 1)}, {"spec": 2, "point": point(2, 2)}]
        front = pareto_front(
            records, ["latency", "energy"], key=lambda r: r["point"]
        )
        assert front == [records[0]]


class TestDominanceRanks:
    def test_layered_fronts(self):
        records = [point(1, 3), point(3, 1), point(2, 4), point(4, 4)]
        ranks = dominance_ranks(records, ["latency", "energy"])
        assert ranks == [0, 0, 1, 2]

    def test_all_dominated_sets_rank_incrementally(self):
        records = [point(i, i) for i in range(4)]
        assert dominance_ranks(records, ["latency", "energy"]) == [0, 1, 2, 3]

    def test_ties_share_rank(self):
        records = [point(1, 1), point(1, 1)]
        assert dominance_ranks(records, ["latency", "energy"]) == [0, 0]


class TestVectorizedRanksMatchReference:
    """Pin the numpy non-dominated sort to the scalar reference."""

    def test_randomized_inputs_identical_ranks(self):
        import numpy as np

        from repro.dse.pareto import _dominance_ranks_reference

        rng = np.random.default_rng(20260808)
        for trial in range(25):
            n = int(rng.integers(1, 60))
            m = int(rng.integers(1, 4))
            # Coarse integer grid -> plenty of exact ties and deep fronts.
            values = rng.integers(0, 5, size=(n, m))
            keys = ["k%d" % j for j in range(m)]
            senses = ["min" if rng.random() < 0.5 else "max" for _ in keys]
            records = [
                {key: float(v) for key, v in zip(keys, row)} for row in values
            ]
            objectives = list(zip(keys, senses))
            assert dominance_ranks(records, objectives) == \
                _dominance_ranks_reference(records, objectives)

    def test_duplicates_and_chains(self):
        from repro.dse.pareto import _dominance_ranks_reference

        records = [point(1, 1), point(1, 1), point(2, 2), point(3, 1), point(2, 3)]
        objectives = ["latency", "energy"]
        assert dominance_ranks(records, objectives) == \
            _dominance_ranks_reference(records, objectives)

    def test_non_finite_vectors_match_reference(self):
        from repro.dse.pareto import _dominance_ranks_reference

        records = [
            point(float("nan"), 1.0),
            point(1.0, 1.0),
            point(2.0, 2.0),
            point(float("inf"), 0.5),
        ]
        objectives = ["latency", "energy"]
        assert dominance_ranks(records, objectives) == \
            _dominance_ranks_reference(records, objectives)

    def test_empty_records(self):
        assert dominance_ranks([], ["latency"]) == []

    def test_deep_single_objective_front_is_fast_enough(self):
        # 400 strictly-ordered points = 400 one-element fronts: the
        # pre-fix loop's cubic corner.  Correctness is pinned above;
        # this guards the shape (every rank distinct, in value order).
        records = [{"latency": float(i)} for i in range(400)]
        assert dominance_ranks(records, ["latency"]) == list(range(400))


class TestUpdateFront:
    """Incremental archive: stream folds must match the batch front."""

    OBJECTIVES = ["latency", "energy"]

    def test_nondominated_record_joins(self):
        front = update_front([], point(1, 3), self.OBJECTIVES)
        assert front == [point(1, 3)]
        front = update_front(front, point(3, 1), self.OBJECTIVES)
        assert front == [point(1, 3), point(3, 1)]

    def test_dominated_record_leaves_archive_unchanged(self):
        archive = [point(1, 1)]
        out = update_front(archive, point(2, 2), self.OBJECTIVES)
        assert out == archive
        assert out is not archive  # a copy: callers may mutate freely

    def test_new_record_evicts_dominated_members(self):
        archive = [point(2, 2), point(1, 3), point(3, 1)]
        out = update_front(archive, point(1, 1), self.OBJECTIVES)
        assert out == [point(1, 1)]

    def test_exact_tie_keeps_both(self):
        out = update_front([point(1, 1)], point(1, 1), self.OBJECTIVES)
        assert out == [point(1, 1), point(1, 1)]

    def test_missing_key_raises(self):
        with pytest.raises(KeyError):
            update_front([], {"latency": 1.0}, self.OBJECTIVES)

    def test_stream_fold_matches_batch_front(self):
        # Deterministic pseudo-random walk with ties and trade-offs.
        records = [
            point(float((i * 37) % 11), float((i * 53) % 13))
            for i in range(60)
        ]
        front = []
        for record in records:
            front = update_front(front, record, self.OBJECTIVES)
        batch = pareto_front(records, self.OBJECTIVES)
        assert sorted(
            (r["latency"], r["energy"]) for r in front
        ) == sorted((r["latency"], r["energy"]) for r in batch)


class TestObjectiveBounds:
    def test_min_sense_bounds(self):
        records = [point(1, 5), point(3, 2), point(2, 8)]
        bounds = objective_bounds(records, ["latency", "energy"])
        assert bounds == {"latency": (1.0, 3.0), "energy": (2.0, 8.0)}

    def test_max_sense_is_sign_normalised(self):
        records = [{"throughput": 1.0}, {"throughput": 3.0}]
        bounds = objective_bounds(records, [("throughput", "max")])
        assert bounds == {"throughput": (-3.0, -1.0)}

    def test_skips_incomparable_and_nonfinite_records(self):
        records = [
            point(1, 1),
            {"latency": 2.0},  # missing a key: skipped whole
            point(float("inf"), 3),  # non-finite: skipped whole
            point(3, 3),
        ]
        bounds = objective_bounds(records, ["latency", "energy"])
        assert bounds == {"latency": (1.0, 3.0), "energy": (1.0, 3.0)}

    def test_no_comparable_records_is_empty(self):
        assert objective_bounds([{"other": 1.0}], ["latency"]) == {}


class TestHypervolumeProxy:
    OBJECTIVES = ["latency", "energy"]
    BOUNDS = {"latency": (1.0, 3.0), "energy": (1.0, 3.0)}

    def test_empty_front_is_zero(self):
        assert hypervolume_proxy([], self.OBJECTIVES, self.BOUNDS) == 0.0

    def test_ideal_corner_fills_the_box(self):
        front = [point(1, 1)]
        assert hypervolume_proxy(front, self.OBJECTIVES, self.BOUNDS) == 1.0

    def test_worst_corner_is_zero(self):
        front = [point(3, 3)]
        assert hypervolume_proxy(front, self.OBJECTIVES, self.BOUNDS) == 0.0

    def test_midpoint_is_quarter_box(self):
        front = [point(2, 2)]
        assert hypervolume_proxy(
            front, self.OBJECTIVES, self.BOUNDS
        ) == pytest.approx(0.25)

    def test_monotone_as_front_improves(self):
        bounds = self.BOUNDS
        series = []
        front = []
        for record in [point(3, 3), point(2, 2), point(1, 2), point(1, 1)]:
            front = update_front(front, record, self.OBJECTIVES)
            series.append(hypervolume_proxy(front, self.OBJECTIVES, bounds))
        assert series == sorted(series)
        assert series[-1] == 1.0

    def test_degenerate_axis_spans_full_edge(self):
        bounds = {"latency": (2.0, 2.0), "energy": (1.0, 3.0)}
        front = [point(2, 1)]
        assert hypervolume_proxy(front, self.OBJECTIVES, bounds) == 1.0

    def test_out_of_bounds_values_clip(self):
        # A front member outside the frame (objectives overridden after
        # the fact) clips to [0, 1] instead of exploding the product.
        front = [point(0, 0)]
        assert hypervolume_proxy(
            front, self.OBJECTIVES, self.BOUNDS
        ) == 1.0
