"""Tests for Pareto dominance, ranks and frontier edge cases."""

import pytest

from repro.dse import Objective, dominance_ranks, dominates, pareto_front


def point(lat, energy):
    return {"latency": lat, "energy": energy}


class TestDominates:
    def test_strict_dominance(self):
        assert dominates(point(1, 1), point(2, 2), ["latency", "energy"])

    def test_partial_improvement_dominates(self):
        assert dominates(point(1, 2), point(2, 2), ["latency", "energy"])

    def test_tie_dominates_neither_way(self):
        a, b = point(1, 1), point(1, 1)
        objectives = ["latency", "energy"]
        assert not dominates(a, b, objectives)
        assert not dominates(b, a, objectives)

    def test_tradeoff_dominates_neither_way(self):
        a, b = point(1, 3), point(3, 1)
        objectives = ["latency", "energy"]
        assert not dominates(a, b, objectives)
        assert not dominates(b, a, objectives)

    def test_maximize_sense(self):
        a, b = {"throughput": 5.0}, {"throughput": 3.0}
        assert dominates(a, b, [("throughput", "max")])
        assert not dominates(b, a, [("throughput", "max")])

    def test_bad_sense_rejected(self):
        with pytest.raises(ValueError):
            Objective.parse(("x", "best"))

    def test_missing_key_raises(self):
        with pytest.raises(KeyError):
            dominates({"latency": 1.0}, {"latency": 2.0}, ["energy"])


class TestParetoFront:
    def test_empty_set(self):
        assert pareto_front([], ["latency"]) == []

    def test_single_point_is_frontier(self):
        records = [point(1, 1)]
        assert pareto_front(records, ["latency", "energy"]) == records

    def test_all_dominated_chain(self):
        records = [point(1, 1), point(2, 2), point(3, 3)]
        assert pareto_front(records, ["latency", "energy"]) == [point(1, 1)]

    def test_tradeoff_curve_all_on_front(self):
        records = [point(1, 3), point(2, 2), point(3, 1)]
        assert pareto_front(records, ["latency", "energy"]) == records

    def test_exact_ties_share_the_front(self):
        records = [point(1, 1), point(1, 1), point(2, 2)]
        assert pareto_front(records, ["latency", "energy"]) == [
            point(1, 1),
            point(1, 1),
        ]

    def test_input_order_preserved(self):
        records = [point(3, 1), point(5, 5), point(1, 3)]
        assert pareto_front(records, ["latency", "energy"]) == [
            point(3, 1),
            point(1, 3),
        ]

    def test_accessor_key(self):
        records = [{"spec": 1, "point": point(1, 1)}, {"spec": 2, "point": point(2, 2)}]
        front = pareto_front(
            records, ["latency", "energy"], key=lambda r: r["point"]
        )
        assert front == [records[0]]


class TestDominanceRanks:
    def test_layered_fronts(self):
        records = [point(1, 3), point(3, 1), point(2, 4), point(4, 4)]
        ranks = dominance_ranks(records, ["latency", "energy"])
        assert ranks == [0, 0, 1, 2]

    def test_all_dominated_sets_rank_incrementally(self):
        records = [point(i, i) for i in range(4)]
        assert dominance_ranks(records, ["latency", "energy"]) == [0, 1, 2, 3]

    def test_ties_share_rank(self):
        records = [point(1, 1), point(1, 1)]
        assert dominance_ranks(records, ["latency", "energy"]) == [0, 0]


class TestVectorizedRanksMatchReference:
    """Pin the numpy non-dominated sort to the scalar reference."""

    def test_randomized_inputs_identical_ranks(self):
        import numpy as np

        from repro.dse.pareto import _dominance_ranks_reference

        rng = np.random.default_rng(20260808)
        for trial in range(25):
            n = int(rng.integers(1, 60))
            m = int(rng.integers(1, 4))
            # Coarse integer grid -> plenty of exact ties and deep fronts.
            values = rng.integers(0, 5, size=(n, m))
            keys = ["k%d" % j for j in range(m)]
            senses = ["min" if rng.random() < 0.5 else "max" for _ in keys]
            records = [
                {key: float(v) for key, v in zip(keys, row)} for row in values
            ]
            objectives = list(zip(keys, senses))
            assert dominance_ranks(records, objectives) == \
                _dominance_ranks_reference(records, objectives)

    def test_duplicates_and_chains(self):
        from repro.dse.pareto import _dominance_ranks_reference

        records = [point(1, 1), point(1, 1), point(2, 2), point(3, 1), point(2, 3)]
        objectives = ["latency", "energy"]
        assert dominance_ranks(records, objectives) == \
            _dominance_ranks_reference(records, objectives)

    def test_non_finite_vectors_match_reference(self):
        from repro.dse.pareto import _dominance_ranks_reference

        records = [
            point(float("nan"), 1.0),
            point(1.0, 1.0),
            point(2.0, 2.0),
            point(float("inf"), 0.5),
        ]
        objectives = ["latency", "energy"]
        assert dominance_ranks(records, objectives) == \
            _dominance_ranks_reference(records, objectives)

    def test_empty_records(self):
        assert dominance_ranks([], ["latency"]) == []

    def test_deep_single_objective_front_is_fast_enough(self):
        # 400 strictly-ordered points = 400 one-element fronts: the
        # pre-fix loop's cubic corner.  Correctness is pinned above;
        # this guards the shape (every rank distinct, in value order).
        records = [{"latency": float(i)} for i in range(400)]
        assert dominance_ranks(records, ["latency"]) == list(range(400))
