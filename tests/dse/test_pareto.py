"""Tests for Pareto dominance, ranks and frontier edge cases."""

import pytest

from repro.dse import Objective, dominance_ranks, dominates, pareto_front


def point(lat, energy):
    return {"latency": lat, "energy": energy}


class TestDominates:
    def test_strict_dominance(self):
        assert dominates(point(1, 1), point(2, 2), ["latency", "energy"])

    def test_partial_improvement_dominates(self):
        assert dominates(point(1, 2), point(2, 2), ["latency", "energy"])

    def test_tie_dominates_neither_way(self):
        a, b = point(1, 1), point(1, 1)
        objectives = ["latency", "energy"]
        assert not dominates(a, b, objectives)
        assert not dominates(b, a, objectives)

    def test_tradeoff_dominates_neither_way(self):
        a, b = point(1, 3), point(3, 1)
        objectives = ["latency", "energy"]
        assert not dominates(a, b, objectives)
        assert not dominates(b, a, objectives)

    def test_maximize_sense(self):
        a, b = {"throughput": 5.0}, {"throughput": 3.0}
        assert dominates(a, b, [("throughput", "max")])
        assert not dominates(b, a, [("throughput", "max")])

    def test_bad_sense_rejected(self):
        with pytest.raises(ValueError):
            Objective.parse(("x", "best"))

    def test_missing_key_raises(self):
        with pytest.raises(KeyError):
            dominates({"latency": 1.0}, {"latency": 2.0}, ["energy"])


class TestParetoFront:
    def test_empty_set(self):
        assert pareto_front([], ["latency"]) == []

    def test_single_point_is_frontier(self):
        records = [point(1, 1)]
        assert pareto_front(records, ["latency", "energy"]) == records

    def test_all_dominated_chain(self):
        records = [point(1, 1), point(2, 2), point(3, 3)]
        assert pareto_front(records, ["latency", "energy"]) == [point(1, 1)]

    def test_tradeoff_curve_all_on_front(self):
        records = [point(1, 3), point(2, 2), point(3, 1)]
        assert pareto_front(records, ["latency", "energy"]) == records

    def test_exact_ties_share_the_front(self):
        records = [point(1, 1), point(1, 1), point(2, 2)]
        assert pareto_front(records, ["latency", "energy"]) == [
            point(1, 1),
            point(1, 1),
        ]

    def test_input_order_preserved(self):
        records = [point(3, 1), point(5, 5), point(1, 3)]
        assert pareto_front(records, ["latency", "energy"]) == [
            point(3, 1),
            point(1, 3),
        ]

    def test_accessor_key(self):
        records = [{"spec": 1, "point": point(1, 1)}, {"spec": 2, "point": point(2, 2)}]
        front = pareto_front(
            records, ["latency", "energy"], key=lambda r: r["point"]
        )
        assert front == [records[0]]


class TestDominanceRanks:
    def test_layered_fronts(self):
        records = [point(1, 3), point(3, 1), point(2, 4), point(4, 4)]
        ranks = dominance_ranks(records, ["latency", "energy"])
        assert ranks == [0, 0, 1, 2]

    def test_all_dominated_sets_rank_incrementally(self):
        records = [point(i, i) for i in range(4)]
        assert dominance_ranks(records, ["latency", "energy"]) == [0, 1, 2, 3]

    def test_ties_share_rank(self):
        records = [point(1, 1), point(1, 1)]
        assert dominance_ranks(records, ["latency", "energy"]) == [0, 0]
