"""The chaos fault plane: unit coverage + seeded end-to-end schedules.

Three layers:

* unit tests for :class:`~repro.dse.chaos.FaultPlane` mechanics (arming
  order, skip/count accounting, torn-tail bounds) and the disk faults
  injected into :class:`~repro.dse.journal.JsonlJournal` /
  :class:`~repro.dse.cache.ResultCache` (a full disk surfaces a clear
  ``OSError`` and the campaign stays resumable);
* deadline semantics: the fork reaper, heartbeat cutoff, scheduling-knob
  purity (deadlines never move cache addresses) and the decorrelated
  reconnect jitter;
* ``pytest -m chaos``: twelve :func:`~repro.dse.chaos.seeded_schedule`
  scenarios (hangs, crashes, torn writes, ENOSPC, connection drops over
  serial and full network stacks) driven resume-until-complete, with
  :class:`~repro.dse.chaos.InvariantChecker` asserting the engine's
  conservation laws afterwards.  Every assertion message carries the
  seed — a failing CI run reproduces from that integer alone.
"""

import errno
import json
import logging
import os
import random
import threading
import time

import pytest

from repro.dse import (
    CHAOS_TARGET,
    JOURNAL_VERSION,
    CampaignRunner,
    CampaignState,
    ChaosCrash,
    ChaosDrop,
    Fault,
    FaultPlane,
    InvariantChecker,
    Job,
    JsonlJournal,
    NetworkExecutor,
    ResultCache,
    RetryPolicy,
    campaign_key,
    is_timeout_error,
    read_events,
    run_checkpointed,
    run_network_worker,
    seeded_schedule,
)
from repro.dse import chaos
from repro.dse.executors import _Heartbeat, WorkerStalled
from repro.dse.net.worker import reconnect_backoff
from repro.dse.runner import _execute, register_target, get_target_deadline


# -- FaultPlane mechanics ------------------------------------------------


class TestFaultPlane:
    def test_skip_then_fire_then_spent(self):
        plane = FaultPlane(seed=1, faults=[Fault("x", "crash", skip=1)])
        plane.fire("x", {})  # skipped
        with pytest.raises(ChaosCrash):
            plane.fire("x", {})
        plane.fire("x", {})  # count=1: spent
        assert [f["site"] for f in plane.fired] == ["x"]

    def test_site_prefix_and_match(self):
        fault = Fault("journal.", "crash", match="camp-a")
        assert fault.applies("journal.append", {"path": "/tmp/camp-a/j"})
        assert not fault.applies("journal.append", {"path": "/tmp/camp-b/j"})
        assert not fault.applies("cache.put", {"path": "/tmp/camp-a/j"})

    def test_one_fault_per_invocation(self):
        plane = FaultPlane(
            seed=0,
            faults=[Fault("x", "delay", delay_s=0.0), Fault("x", "crash")],
        )
        plane.fire("x", {})  # the delay wins; the crash must not stack
        assert [f["kind"] for f in plane.fired] == ["delay"]
        with pytest.raises(ChaosCrash):
            plane.fire("x", {})

    def test_probability_is_seeded_deterministic(self):
        def fires(seed):
            plane = FaultPlane(
                seed=seed,
                faults=[Fault("x", "crash", count=0, probability=0.5)],
            )
            hits = []
            for _ in range(8):
                try:
                    plane.fire("x", {})
                    hits.append(False)
                except ChaosCrash:
                    hits.append(True)
            return hits

        assert fires(7) == fires(7)
        assert fires(7) != fires(8)  # distinct seeds decorrelate

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            Fault("x", "meteor")

    def test_disabled_fire_is_noop(self):
        assert chaos.active() is None
        chaos.fire("journal.append", path="/nope")

    def test_install_is_scoped(self):
        plane = FaultPlane(seed=0)
        with plane:
            assert chaos.active() is plane
        assert chaos.active() is None

    def test_torn_never_crosses_previous_newline(self, tmp_path):
        path = tmp_path / "j.jsonl"
        first = b'{"event":"one"}\n'
        path.write_bytes(first + b'{"event":"two"}\n')
        FaultPlane._tear(str(path), torn_bytes=1000)
        data = path.read_bytes()
        assert data.startswith(first)
        assert len(data) < len(first) + len(b'{"event":"two"}\n')


# -- disk faults at the journal/cache seams ------------------------------


class TestDiskFaults:
    def test_journal_append_enospc_is_clear_and_resumable(self, tmp_path):
        journal = JsonlJournal(str(tmp_path / "j.jsonl"))
        journal.append({"event": "begin", "n": 0})
        with FaultPlane(seed=0, faults=[Fault("journal.append", "enospc")]):
            with pytest.raises(OSError) as exc_info:
                journal.append({"event": "lost", "n": 1})
        assert exc_info.value.errno == errno.ENOSPC
        assert "no space left" in str(exc_info.value)
        # Nothing was written, nothing is corrupt, appends resume.
        events, torn = read_events(journal.path)
        assert ([e["event"] for e in events], torn) == (["begin"], 0)
        journal.append({"event": "after", "n": 2})
        events, torn = read_events(journal.path)
        assert ([e["event"] for e in events], torn) == (["begin", "after"], 0)

    def test_journal_torn_tail_loses_only_final_line(self, tmp_path):
        journal = JsonlJournal(str(tmp_path / "j.jsonl"))
        journal.append({"event": "begin"})
        with FaultPlane(
            seed=0, faults=[Fault("journal.appended", "torn", torn_bytes=5)]
        ):
            with pytest.raises(ChaosCrash):
                journal.append({"event": "torn-away"})
        events, torn = read_events(journal.path)
        assert [e["event"] for e in events] == ["begin"]
        assert torn > 0  # the in-flight line, and only it, was torn
        JsonlJournal(journal.path).append({"event": "healed"})
        events, torn = read_events(journal.path)
        assert [e["event"] for e in events] == ["begin", "healed"]
        assert torn == 0  # the re-opened journal repaired the tail

    def test_cache_put_enospc_is_clear_and_resumable(self, tmp_path):
        cache = ResultCache(str(tmp_path / "cache"))
        with FaultPlane(seed=0, faults=[Fault("cache.put", "enospc")]):
            with pytest.raises(OSError) as exc_info:
                cache.put("k" * 16, {"result": 1})
        assert exc_info.value.errno == errno.ENOSPC
        assert cache.get("k" * 16) is None  # no torn record
        cache.put("k" * 16, {"result": 1})
        assert cache.get("k" * 16) == {"result": 1}

    def test_campaign_survives_journal_enospc(self, tmp_path):
        """A full disk mid-campaign: clear error, resume finishes."""
        camp = str(tmp_path / "camp")
        key = campaign_key({"kind": "chaos-enospc"})
        jobs = [Job(CHAOS_TARGET, {"x": i}) for i in range(4)]

        def attempt(resume):
            runner = CampaignRunner(
                workers=1, cache=ResultCache(os.path.join(camp, "cache"))
            )
            state = CampaignState.open(
                os.path.join(camp, "journal.jsonl"), key,
                total=len(jobs), resume=resume,
            )
            return run_checkpointed(jobs, runner, state)

        with FaultPlane(
            seed=0, faults=[Fault("journal.append", "enospc", skip=2)]
        ):
            with pytest.raises(OSError):
                attempt(resume=False)
        outcomes = attempt(resume=True)
        assert all(o.ok for o in outcomes)
        assert InvariantChecker(camp).check(expect_complete=True) == []


# -- deadline semantics --------------------------------------------------


class TestDeadline:
    def test_reaper_kills_hang_at_deadline(self):
        start = time.monotonic()
        ok, result, error, elapsed = _execute(
            (CHAOS_TARGET, {"x": 1, "chaos": "hang"}, 0, 0.3)
        )
        wall = time.monotonic() - start
        assert not ok and result is None
        assert is_timeout_error(error)
        assert wall < 0.3 + 1.0

    def test_reaper_passes_healthy_results_through(self):
        ok, result, error, elapsed = _execute(
            (CHAOS_TARGET, {"x": 3}, 9, 5.0)
        )
        assert ok and error is None
        assert result["value"] == 6 and result["seed"] == 9

    def test_reaper_reports_wrong_exit_as_crash(self):
        ok, result, error, elapsed = _execute(
            (CHAOS_TARGET, {"x": 1, "chaos": "exit", "chaos_code": 3}, 0, 5.0)
        )
        assert not ok
        assert "EvaluationCrashed" in error

    def test_deadline_outside_content_key(self):
        plain = Job(CHAOS_TARGET, {"x": 1})
        bounded = Job(CHAOS_TARGET, {"x": 1}, deadline=2.0)
        assert plain.key == bounded.key
        assert plain.seed == bounded.seed

    def test_effective_deadline_precedence(self):
        target = "dse-chaos-test-deadline"
        register_target(target, lambda spec, seed: {}, deadline=7.0)
        try:
            assert get_target_deadline(target) == 7.0
            runner = CampaignRunner(workers=1, deadline=3.0)
            assert runner.effective_deadline(Job(target, {})) == 3.0
            assert runner.effective_deadline(Job(target, {}, deadline=1.0)) == 1.0
            bare = CampaignRunner(workers=1)
            assert bare.effective_deadline(Job(target, {})) == 7.0
        finally:
            from repro.dse.runner import _TARGETS, _TARGET_DEADLINES

            _TARGETS.pop(target, None)
            _TARGET_DEADLINES.pop(target, None)

    def test_negative_deadline_rejected(self):
        with pytest.raises(ValueError):
            CampaignRunner(workers=1, deadline=-1.0)

    def test_heartbeat_stops_past_deadline(self):
        class Beats:
            worker = "w1"

            def __init__(self):
                self.stamps = []

            def heartbeat(self, task, ttl):
                self.stamps.append(time.monotonic())

        journal = Beats()
        heartbeat = _Heartbeat(journal, "task-1", ttl=0.09, deadline=0.2)
        time.sleep(0.7)
        # The thread returned on its own once the evaluation overran:
        # the lease stops renewing and lawfully expires.
        assert not heartbeat._thread.is_alive()
        assert all(s < heartbeat._started + 0.45 for s in journal.stamps)
        heartbeat.stop()

    def test_heartbeat_stop_warns_on_failed_join(self, caplog):
        class Beats:
            worker = "w-stuck"

            def heartbeat(self, task, ttl):
                pass

        heartbeat = _Heartbeat(Beats(), "task-9", ttl=30.0)

        class StuckThread:
            name = "hb-thread"

            def join(self, timeout=None):
                pass

            def is_alive(self):
                return True

        heartbeat._thread = StuckThread()
        with caplog.at_level(logging.WARNING, "repro.dse.executors"):
            heartbeat.stop()
        assert "did not stop within" in caplog.text
        assert "w-stuck" in caplog.text and "task-9" in caplog.text

    def test_reconnect_backoff_decorrelated_jitter(self):
        rng = random.Random(42)
        base, cap = 0.1, 30.0
        wait = base
        waits = []
        for _ in range(50):
            wait = reconnect_backoff(wait, base, cap, rng)
            waits.append(wait)
        assert all(base <= w <= cap for w in waits)
        assert max(waits) > 1.0  # grows well past the base...
        below_cap = [w for w in waits if w < cap]
        assert len(set(below_cap)) == len(below_cap)  # ...never in lockstep
        # Seeded determinism: the whole trajectory replays.
        rng2 = random.Random(42)
        wait2 = base
        replay = []
        for _ in range(50):
            wait2 = reconnect_backoff(wait2, base, cap, rng2)
            replay.append(wait2)
        assert replay == waits
        # Two workers with distinct RNGs desynchronise immediately.
        other = random.Random(43)
        assert reconnect_backoff(base, base, cap, other) != waits[0]

    def test_supervisor_shutdown_warns_on_unkillable_worker(self, caplog):
        import subprocess

        from repro.dse import Supervisor

        class Unkillable:
            pid = 4242

            def poll(self):
                return None

            def terminate(self):
                pass

            def kill(self):
                pass

            def wait(self, timeout=None):
                raise subprocess.TimeoutExpired(cmd="worker", timeout=timeout)

        supervisor = Supervisor(("127.0.0.1", 1), probe=lambda: {})
        supervisor.procs = [Unkillable()]
        with caplog.at_level(logging.WARNING, "repro.dse.net.supervisor"):
            supervisor.shutdown(timeout=0.0)
        assert "survived terminate and kill" in caplog.text
        assert "4242" in caplog.text
        assert supervisor.procs == []


# -- the InvariantChecker ------------------------------------------------


def _small_campaign(camp, jobs, resume=False, deadline=None, retry=None):
    runner = CampaignRunner(
        workers=1,
        cache=ResultCache(os.path.join(camp, "cache")),
        deadline=deadline,
    )
    state = CampaignState.open(
        os.path.join(camp, "journal.jsonl"),
        campaign_key({"kind": "chaos-invariants"}),
        total=len(jobs),
        resume=resume,
    )
    return run_checkpointed(jobs, runner, state, retry=retry)


class TestInvariantChecker:
    def test_clean_campaign_holds_all_laws(self, tmp_path):
        camp = str(tmp_path / "camp")
        _small_campaign(camp, [Job(CHAOS_TARGET, {"x": i}) for i in range(3)])
        assert InvariantChecker(camp).check(expect_complete=True) == []

    def test_missing_journal_is_a_violation(self, tmp_path):
        violations = InvariantChecker(str(tmp_path / "void")).check()
        assert violations and "no campaign journal" in violations[0]

    def test_detects_lost_result(self, tmp_path):
        camp = str(tmp_path / "camp")
        _small_campaign(camp, [Job(CHAOS_TARGET, {"x": i}) for i in range(3)])
        cache_dir = os.path.join(camp, "cache")
        victims = [
            os.path.join(directory, name)
            for directory, _, names in os.walk(cache_dir)
            for name in names
            if name.endswith(".json")
        ]
        os.unlink(victims[0])
        violations = InvariantChecker(camp).check(expect_complete=True)
        assert any("lost result" in v for v in violations)

    def test_detects_backward_clock_in_journal(self, tmp_path):
        """Stamps must be monotone non-decreasing per journal; the
        writer clamps them, so a regression can only mean damage (or a
        writer bug) and the checker flags it."""
        camp = tmp_path / "camp"
        camp.mkdir()
        lines = [
            {
                "event": "begin",
                "version": JOURNAL_VERSION,
                "campaign_key": campaign_key({"kind": "chaos-clock"}),
                "total": 2,
                "meta": {},
                "created": 100.0,
                "updated": 100.0,
            },
            {"event": "done", "key": "aa00", "elapsed": 1.0, "t": 100.0},
            {"event": "done", "key": "bb00", "elapsed": 1.0, "t": 50.0},
        ]
        with open(camp / "journal.jsonl", "w") as handle:
            for line in lines:
                handle.write(json.dumps(line) + "\n")
        violations = InvariantChecker(str(camp)).check()
        assert any("t decreased" in v for v in violations)

    def test_monotone_journal_passes_clock_law(self, tmp_path):
        """The same campaign with ordered stamps raises no clock
        violation (the lost-result law still fires: no cache)."""
        camp = tmp_path / "camp"
        camp.mkdir()
        lines = [
            {
                "event": "begin",
                "version": JOURNAL_VERSION,
                "campaign_key": campaign_key({"kind": "chaos-clock"}),
                "total": 2,
                "meta": {},
                "created": 100.0,
                "updated": 100.0,
            },
            {"event": "done", "key": "aa00", "elapsed": 1.0, "t": 100.0},
            {"event": "done", "key": "bb00", "elapsed": 1.0, "t": 100.0},
        ]
        with open(camp / "journal.jsonl", "w") as handle:
            for line in lines:
                handle.write(json.dumps(line) + "\n")
        violations = InvariantChecker(str(camp)).check()
        assert not any("t decreased" in v for v in violations)

    def test_incomplete_campaign_flagged_only_when_expected_complete(
        self, tmp_path
    ):
        camp = str(tmp_path / "camp")
        jobs = [Job(CHAOS_TARGET, {"x": i}) for i in range(3)]
        runner = CampaignRunner(
            workers=1, cache=ResultCache(os.path.join(camp, "cache"))
        )
        state = CampaignState.open(
            os.path.join(camp, "journal.jsonl"),
            campaign_key({"kind": "chaos-invariants"}),
            total=len(jobs) + 2,  # two points never ran
        )
        run_checkpointed(jobs, runner, state)
        checker = InvariantChecker(camp)
        assert any("incomplete" in v for v in checker.check(expect_complete=True))
        assert checker.check(expect_complete=False) == []


# -- seeded end-to-end schedules (`pytest -m chaos`) ---------------------

CHAOS_SEEDS = list(range(12))

#: Retry budget generous enough that every *_first evaluation fault
#: recovers, yet finite so a real regression quarantines loudly.
CHAOS_RETRY = RetryPolicy(max_attempts=3, backoff=0.0)


def _schedule_jobs(schedule):
    jobs = []
    for index in range(schedule.points):
        spec = {"x": index}
        mode = schedule.evaluation_faults.get(index)
        if mode:
            spec["chaos"] = mode
            if mode == "slow":
                spec["chaos_s"] = 0.1
        jobs.append(Job(CHAOS_TARGET, spec))
    return jobs


def _drive_serial(schedule, camp, jobs, key, resume):
    runner = CampaignRunner(
        workers=1,
        cache=ResultCache(os.path.join(camp, "cache")),
        deadline=schedule.deadline,
    )
    state = CampaignState.open(
        os.path.join(camp, "journal.jsonl"), key,
        total=len(jobs), resume=resume,
    )
    return run_checkpointed(jobs, runner, state, retry=CHAOS_RETRY)


class _WorkerFleet:
    """Respawn crashed network-worker threads until told to stop.

    An injected ``ChaosCrash`` in a worker models that worker's death;
    a real fleet has a supervisor respawning it, and this is the
    in-process equivalent (exceptions are swallowed — the protocol's
    lease expiry + reclaim owns recovery).
    """

    def __init__(self, address):
        self.address = address
        self.stop = threading.Event()
        self.spawned = 0
        self._supervisor = threading.Thread(target=self._supervise, daemon=True)
        self._supervisor.start()

    def _worker(self, name):
        try:
            run_network_worker(
                self.address,
                worker_id=name,
                poll=0.01,
                backoff=0.02,
                max_backoff=0.2,
                reconnect_timeout=5.0,
            )
        except Exception:
            pass  # injected death; the supervisor respawns

    def _supervise(self):
        while not self.stop.is_set():
            self.spawned += 1
            thread = threading.Thread(
                target=self._worker,
                args=("chaos-w%d" % self.spawned,),
                daemon=True,
            )
            thread.start()
            while thread.is_alive() and not self.stop.is_set():
                time.sleep(0.02)

    def close(self):
        self.stop.set()
        self._supervisor.join(timeout=10)


def _drive_network(schedule, camp, jobs, key, resume):
    executor = NetworkExecutor(
        camp, lease_ttl=1.0, poll=0.01, timeout=60
    )
    fleet = _WorkerFleet(executor.address)
    try:
        runner = CampaignRunner(
            workers=1,
            cache=ResultCache(os.path.join(camp, "cache")),
            executor=executor,
            deadline=schedule.deadline,
        )
        state = CampaignState.open(
            os.path.join(camp, "journal.jsonl"), key,
            total=len(jobs), resume=resume,
        )
        return run_checkpointed(jobs, runner, state, retry=CHAOS_RETRY)
    finally:
        executor.close()
        fleet.close()


@pytest.mark.chaos
@pytest.mark.parametrize("seed", CHAOS_SEEDS)
def test_seeded_schedule_preserves_invariants(seed, tmp_path, monkeypatch):
    """One deterministic chaos scenario per seed, resumed to completion.

    Reproduce any failure with exactly this seed:
    ``seeded_schedule(seed)`` is a pure function of it.
    """
    schedule = seeded_schedule(seed)
    monkeypatch.setenv(
        "REPRO_DSE_SELFTEST_DIR", str(tmp_path / "invocations")
    )
    camp = str(tmp_path / "camp")
    jobs = _schedule_jobs(schedule)
    key = campaign_key({"kind": "chaos-schedule", "seed": seed})
    drive = _drive_network if schedule.mode == "network" else _drive_serial

    outcomes = None
    with schedule.plane() as plane:
        for attempt in range(25):
            resume = os.path.exists(os.path.join(camp, "journal.jsonl"))
            try:
                outcomes = drive(schedule, camp, jobs, key, resume)
                break
            except (ChaosCrash, ChaosDrop, OSError, WorkerStalled):
                continue  # the campaign died; resume, as an operator would
        else:
            pytest.fail(
                "chaos seed %d: campaign never converged (%s)"
                % (seed, schedule)
            )

    message = "chaos seed %d (%s, fired %s)" % (seed, schedule, plane.fired)
    assert outcomes is not None, message
    assert all(o.ok for o in outcomes), message + " outcomes: %s" % (
        [(o.ok, o.error) for o in outcomes],
    )
    violations = InvariantChecker(camp).check(expect_complete=True)
    assert violations == [], message + " violations: %s" % (violations,)


@pytest.mark.chaos
def test_seed_menu_covers_required_fault_classes():
    """The CI seed range exercises every acceptance fault class."""
    kinds = set()
    evaluation = set()
    modes = set()
    for seed in CHAOS_SEEDS:
        schedule = seeded_schedule(seed)
        modes.add(schedule.mode)
        kinds.update(fault.kind for fault in schedule.faults)
        evaluation.update(schedule.evaluation_faults.values())
    assert {"enospc", "torn", "crash", "drop"} <= kinds
    assert "hang_first" in evaluation and "crash_first" in evaluation
    assert modes == {"serial", "network"}


@pytest.mark.chaos
def test_schedules_are_pure_functions_of_the_seed():
    for seed in CHAOS_SEEDS:
        assert seeded_schedule(seed) == seeded_schedule(seed)
