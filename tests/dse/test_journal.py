"""Fault-injection tests for the JSONL journal: torn lines, kills,
compaction, retries, quarantine, and legacy migration.

The cheap mechanics live here (echo evaluators, workers=1); the
end-to-end campaigns over real evaluators stay in
test_resume_campaign.py.  ``CrashingRunner`` / ``torn_write`` come from
``tests/test_utils.py``.
"""

import json
import os
import shutil

import pytest
from test_utils import CampaignKilled, CrashingRunner, torn_write

from repro.dse import (
    JOURNAL_NAME,
    CampaignRunner,
    CampaignState,
    Job,
    ResultCache,
    RetryPolicy,
    campaign_key,
    journal_path,
    read_events,
    register_target,
    run_checkpointed,
)
from repro.dse.journal import snapshot_path

KEY = campaign_key({"kind": "journal-test", "axes": [["x", [0, 1, 2, 3]]]})

CALLS = []


def _echo(spec, seed):
    CALLS.append((spec["x"], seed))
    return {"value": spec["x"] * 10}


def _boom(spec, seed):
    CALLS.append((spec["x"], seed))
    raise ValueError("point %d always breaks" % spec["x"])


def _flaky(spec, seed):
    """Fails until the reseeded second attempt comes around."""
    CALLS.append((spec["x"], seed))
    previous = sum(1 for x, _ in CALLS[:-1] if x == spec["x"])
    if previous < spec.get("heal_after", 1):
        raise ValueError("flaky point %d (attempt %d)" % (spec["x"], previous + 1))
    return {"value": spec["x"] * 10}


@pytest.fixture(autouse=True)
def _targets():
    register_target("jrnl-echo", _echo)
    register_target("jrnl-boom", _boom)
    register_target("jrnl-flaky", _flaky)
    del CALLS[:]


def _runner(tmp_path, name="cache"):
    return CampaignRunner(workers=1, cache=ResultCache(str(tmp_path / name)))


def _complete_campaign(tmp_path, n=4):
    """A finished n-point campaign; returns (jobs, results, journal path)."""
    jobs = [Job("jrnl-echo", {"x": i}) for i in range(n)]
    path = str(tmp_path / JOURNAL_NAME)
    state = CampaignState.open(path, KEY, total=n)
    results = run_checkpointed(jobs, _runner(tmp_path), state)
    state.close()
    return jobs, results, path


class TestTornLineRecovery:
    def test_recovery_from_every_byte_offset(self, tmp_path):
        """Truncating the journal at ANY byte offset past the begin
        line loads cleanly and keeps every fully-written event."""
        _, _, path = _complete_campaign(tmp_path, n=4)
        raw = open(path, "rb").read()
        lines = raw.decode().splitlines(keepends=True)
        header_end = len(lines[0].encode())
        # done-event count that survives a truncation at each offset.
        boundaries = []
        position = 0
        for line in lines:
            position += len(line.encode())
            boundaries.append((position, line))

        work = str(tmp_path / "torn.jsonl")
        for offset in range(header_end, len(raw) + 1):
            shutil.copyfile(path, work)
            torn_write(work, offset)
            state = CampaignState.load(work)
            survivors = sum(
                1
                for end, line in boundaries
                if '"done"' in line
                # A complete record survives even without its final
                # newline terminator (end - 1 == offset).
                and (end <= offset or end - 1 == offset)
            )
            assert state.done == survivors, "offset %d" % offset
            assert state.key == KEY

    def test_torn_tail_is_truncated_before_next_append(self, tmp_path):
        jobs, _, path = _complete_campaign(tmp_path, n=3)
        torn_write(path, os.path.getsize(path) - 5)
        state = CampaignState.open(path, KEY, total=4, resume=True)
        assert state.done == 2  # the torn third point is gone
        extra = Job("jrnl-echo", {"x": 99})
        run_checkpointed(
            resumed_jobs(jobs) + [extra], _runner(tmp_path), state
        )
        state.close()
        _, torn = read_events(path)
        assert torn == 0  # the torn bytes were cut, not buried
        assert CampaignState.load(path).done == 4

    def test_interior_corruption_raises(self, tmp_path):
        _, _, path = _complete_campaign(tmp_path, n=3)
        lines = open(path, "rb").read().splitlines(keepends=True)
        lines[2] = b'{"event": "done", "key":  GARBAGE\n'
        with open(path, "wb") as handle:
            handle.writelines(lines)
        with pytest.raises(ValueError, match="corrupt"):
            CampaignState.load(path)

    def test_whole_file_garbage_raises(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        path.write_text("{ not json at all")
        with pytest.raises(ValueError, match="corrupt"):
            CampaignState.load(str(path))


class TestKillAndResume:
    def test_kill_then_tear_then_resume_identical(self, tmp_path):
        """The acceptance criterion end to end: kill the campaign
        mid-stream, tear the journal at every byte offset of its final
        line, resume — zero re-evaluation of intact points, results
        identical to an uninterrupted run."""
        jobs = [Job("jrnl-echo", {"x": i}) for i in range(4)]
        reference = CampaignRunner(
            workers=1, cache=ResultCache(str(tmp_path / "ref-cache"))
        ).run(jobs)

        base = tmp_path / "killed"
        base.mkdir()
        path = str(base / JOURNAL_NAME)
        state = CampaignState.open(path, KEY, total=4)
        killer = CrashingRunner(_runner(base), crash_after=2)
        with pytest.raises(CampaignKilled):
            run_checkpointed(jobs, killer, state)
        state.close()
        frozen = open(path, "rb").read()
        done_at_kill = CampaignState.load(path).done
        assert done_at_kill == 2

        # The final journal line may be torn anywhere: every offset
        # from "last line fully gone" to "fully present" must resume
        # to the identical end state.
        last_line_start = frozen.rfind(b"\n", 0, len(frozen) - 1) + 1
        for offset in range(last_line_start, len(frozen) + 1):
            for name in (JOURNAL_NAME, snapshot_path(JOURNAL_NAME)):
                target = str(base / name)
                if os.path.exists(target):
                    os.unlink(target)
            with open(path, "wb") as handle:
                handle.write(frozen)
            torn_write(path, offset)

            del CALLS[:]
            resumed = CampaignState.open(path, KEY, total=4, resume=True)
            survivors = set(resumed.completed)
            results = run_checkpointed(resumed_jobs(jobs), _runner(base), resumed)
            resumed.close()
            # Intact points replay from the cache: never re-evaluated.
            evaluated = {x for x, _ in CALLS}
            for job in jobs:
                if job.key in survivors:
                    assert job.spec["x"] not in evaluated
            assert [r.result for r in results] == [r.result for r in reference]
            assert [r.ok for r in results] == [r.ok for r in reference]
            assert CampaignState.load(path).done == 4


def resumed_jobs(jobs):
    """Fresh Job objects (same content) — resumption never relies on
    object identity, only on content keys."""
    return [Job(job.target, dict(job.spec)) for job in jobs]


class TestCompaction:
    def test_compaction_preserves_state_and_shrinks_log(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        state = CampaignState(path, KEY, total=40, compact_threshold=20)
        jobs = [Job("jrnl-echo", {"x": i}) for i in range(40)]
        results = CampaignRunner(workers=1).run(jobs)
        for outcome in results:
            state.record(outcome)
        state.close()
        assert os.path.exists(snapshot_path(path))
        events, _ = read_events(path)
        # Far fewer lines than points: the log was folded away.
        assert len(events) < 25
        loaded = CampaignState.load(path)
        assert loaded.done == 40
        assert loaded.failed == 0
        for job, outcome in zip(jobs, results):
            assert loaded.entry(job.key)["ok"] is outcome.ok

    def test_save_compacts_on_demand(self, tmp_path):
        _, _, path = _complete_campaign(tmp_path, n=4)
        state = CampaignState.load(path)
        state.save()
        state.close()
        events, _ = read_events(path)
        assert [e["event"] for e in events] == ["begin"]
        assert CampaignState.load(path).done == 4

    def test_crash_between_snapshot_and_rewrite_is_idempotent(self, tmp_path):
        """Snapshot written, journal rewrite lost: replaying the full
        log over the snapshot must converge to the same state."""
        _, _, path = _complete_campaign(tmp_path, n=4)
        full_log = open(path, "rb").read()
        state = CampaignState.load(path)
        state.save()  # snapshot + one-line tail
        state.close()
        with open(path, "wb") as handle:  # crash: old log restored
            handle.write(full_log)
        loaded = CampaignState.load(path)
        assert loaded.done == 4
        assert loaded.failed == 0
        assert loaded.total == 4

    def test_stale_snapshot_from_other_campaign_is_ignored(self, tmp_path):
        _, _, path = _complete_campaign(tmp_path, n=3)
        state = CampaignState.load(path)
        state.save()
        state.close()
        # A fresh campaign at the same path must not inherit anything.
        other = campaign_key({"kind": "journal-test", "axes": [["x", [9]]]})
        fresh = CampaignState.open(path, other, total=1)
        fresh.close()
        assert CampaignState.load(path).done == 0
        assert not os.path.exists(snapshot_path(path))


class TestRetryAndQuarantine:
    def test_flaky_point_recovers_on_reseeded_retry(self, tmp_path):
        jobs = [Job("jrnl-flaky", {"x": 1})]
        path = str(tmp_path / JOURNAL_NAME)
        state = CampaignState.open(path, KEY, total=1)
        policy = RetryPolicy(max_attempts=3)
        (result,) = run_checkpointed(
            jobs, _runner(tmp_path), state, retry=policy
        )
        state.close()
        assert result.ok
        assert result.attempts == 2
        assert len(CALLS) == 2
        seeds = [seed for _, seed in CALLS]
        assert seeds[0] != seeds[1]  # content-derived reseeding
        loaded = CampaignState.load(path)
        assert loaded.retried == 1
        assert loaded.retries == 1
        assert loaded.quarantined == set()
        kinds = [e["event"] for e in read_events(path)[0]]
        assert "retry" in kinds and "done" in kinds

    def test_budget_exhaustion_quarantines(self, tmp_path):
        jobs = [Job("jrnl-boom", {"x": 5}), Job("jrnl-echo", {"x": 1})]
        path = str(tmp_path / JOURNAL_NAME)
        state = CampaignState.open(path, KEY, total=2)
        policy = RetryPolicy(max_attempts=3)
        results = run_checkpointed(
            jobs, _runner(tmp_path), state, retry=policy
        )
        state.close()
        assert not results[0].ok
        assert results[0].attempts == 3
        assert results[1].ok
        assert sum(1 for x, _ in CALLS if x == 5) == 3
        loaded = CampaignState.load(path)
        assert loaded.quarantined == {jobs[0].key}
        status = loaded.status()
        assert status["quarantined"] == 1
        assert status["quarantine"] == [jobs[0].key]
        assert status["retried"] == 1
        assert status["retries"] == 2

    def test_quarantined_point_not_rerun_on_resume(self, tmp_path):
        jobs = [Job("jrnl-boom", {"x": 5})]
        path = str(tmp_path / JOURNAL_NAME)
        state = CampaignState.open(path, KEY, total=1)
        policy = RetryPolicy(max_attempts=2)
        run_checkpointed(jobs, _runner(tmp_path), state, retry=policy)
        state.close()
        assert len(CALLS) == 2

        del CALLS[:]
        resumed = CampaignState.open(path, KEY, total=1, resume=True)
        (replayed,) = run_checkpointed(
            jobs, _runner(tmp_path), resumed, retry=policy
        )
        resumed.close()
        assert CALLS == []  # quarantine blocks re-evaluation
        assert not replayed.ok
        assert "always breaks" in replayed.error
        assert replayed.from_cache

    def test_budget_spans_resumes(self, tmp_path):
        """Attempts journaled before a kill count against the budget."""
        jobs = [Job("jrnl-boom", {"x": 5})]
        path = str(tmp_path / JOURNAL_NAME)
        state = CampaignState.open(path, KEY, total=1)
        run_checkpointed(
            jobs, _runner(tmp_path), state, retry=RetryPolicy(max_attempts=2)
        )
        state.close()
        assert len(CALLS) == 2  # budget of 2 spent, point quarantined

        # Resuming with a *larger* budget: quarantine still holds...
        del CALLS[:]
        resumed = CampaignState.open(path, KEY, total=1, resume=True)
        run_checkpointed(
            jobs, _runner(tmp_path), resumed, retry=RetryPolicy(max_attempts=4)
        )
        assert CALLS == []
        # ...until released; then only the *remaining* budget is fresh.
        released = resumed.release()
        assert released == [jobs[0].key]
        (result,) = run_checkpointed(
            jobs, _runner(tmp_path), resumed, retry=RetryPolicy(max_attempts=4)
        )
        resumed.close()
        assert len(CALLS) == 4
        assert not result.ok and result.attempts == 4

    def test_retry_failed_releases_quarantine(self, tmp_path):
        jobs = [Job("jrnl-boom", {"x": 5})]
        path = str(tmp_path / JOURNAL_NAME)
        state = CampaignState.open(path, KEY, total=1)
        policy = RetryPolicy(max_attempts=2)
        run_checkpointed(jobs, _runner(tmp_path), state, retry=policy)
        assert jobs[0].key in state.quarantined

        register_target("jrnl-boom", _echo)  # the point is healed
        del CALLS[:]
        (result,) = run_checkpointed(
            jobs, _runner(tmp_path), state, retry_failed=True, retry=policy
        )
        state.close()
        register_target("jrnl-boom", _boom)
        assert result.ok
        assert len(CALLS) == 1
        loaded = CampaignState.load(path)
        assert loaded.quarantined == set()
        assert loaded.entry(jobs[0].key)["ok"] is True

    def test_failed_points_without_policy_replay_unchanged(self, tmp_path):
        """No policy, no budget: the PR-2 contract is untouched."""
        jobs = [Job("jrnl-boom", {"x": 5})]
        path = str(tmp_path / JOURNAL_NAME)
        state = CampaignState.open(path, KEY, total=1)
        run_checkpointed(jobs, _runner(tmp_path), state)
        assert len(CALLS) == 1
        (replayed,) = run_checkpointed(jobs, _runner(tmp_path), state)
        state.close()
        assert len(CALLS) == 1
        assert not replayed.ok and replayed.from_cache
        assert CampaignState.load(path).quarantined == set()

    def test_quarantined_excluded_from_records_and_pareto(self):
        from repro.dse import JobResult, MemoryCampaignResult

        def outcome(x):
            job = Job(
                "vaet-memory",
                {
                    "node_nm": 45,
                    "constraints": {"wer_target": 1e-9},
                    "config": {"x": x},
                },
            )
            point = {
                "config": {"rows": 64, "x": x},
                "write_latency": 1.0 + x,
                "write_energy": 2.0,
                "area": 1.0,
            }
            return job, JobResult(
                job=job, ok=True, result={"feasible": True, "point": point}
            )

        pairs = [outcome(0), outcome(1)]
        result = MemoryCampaignResult(
            jobs=[j for j, _ in pairs],
            outcomes=[o for _, o in pairs],
            elapsed=0.0,
            quarantined=[pairs[0][0].key],
        )
        records = result.records()
        assert len(records) == 1  # the quarantined point is excluded
        assert records[0]["key"] == pairs[1][0].key
        assert all(
            row["key"] != pairs[0][0].key for row in result.pareto()
        )


class TestLegacyMigration:
    FIXTURE = os.path.join(os.path.dirname(__file__), "fixtures",
                           "legacy_checkpoint.json")
    GOLDEN = os.path.join(os.path.dirname(__file__), "fixtures",
                          "legacy_checkpoint_status.json")

    def _stage(self, tmp_path):
        target = tmp_path / "checkpoint.json"
        shutil.copyfile(self.FIXTURE, str(target))
        return str(target)

    def test_golden_status_preserved_by_upgrade(self, tmp_path):
        legacy = self._stage(tmp_path)
        state = CampaignState.load(legacy)
        with open(self.GOLDEN) as handle:
            golden = json.load(handle)
        assert state.status() == golden
        # The upgrade landed a JSONL journal next to the legacy file...
        upgraded = os.path.join(str(tmp_path), JOURNAL_NAME)
        assert os.path.exists(upgraded)
        assert journal_path(str(tmp_path)) == upgraded
        # ...that reports the identical status after a round trip.
        assert CampaignState.load(upgraded).status() == golden

    def test_legacy_resume_identical_to_uninterrupted(self, tmp_path):
        """Kill-and-resume equivalence for the legacy format: a v1
        journal resumes with zero re-evaluation and identical results."""
        jobs = [Job("jrnl-echo", {"x": i}) for i in range(4)]
        runner = _runner(tmp_path)
        reference = CampaignRunner(
            workers=1, cache=ResultCache(str(tmp_path / "ref-cache"))
        ).run(jobs)

        # A campaign killed after 2 points, journaled in the v1 format.
        killer = CrashingRunner(runner, crash_after=2)
        path = str(tmp_path / JOURNAL_NAME)
        state = CampaignState.open(path, KEY, total=4)
        with pytest.raises(CampaignKilled):
            run_checkpointed(jobs, killer, state)
        state.close()
        legacy_payload = {
            "version": 1,
            "campaign_key": KEY,
            "total": 4,
            "meta": {"kind": "journal-test"},
            "created": 1700000000.0,
            "updated": 1700000100.0,
            "completed": dict(state.completed),
        }
        os.unlink(path)
        legacy = str(tmp_path / "checkpoint.json")
        with open(legacy, "w") as handle:
            json.dump(legacy_payload, handle)

        del CALLS[:]
        resumed = CampaignState.open(
            journal_path(str(tmp_path)), KEY, total=4, resume=True
        )
        assert resumed.path.endswith(JOURNAL_NAME)  # upgraded in flight
        results = run_checkpointed(resumed_jobs(jobs), runner, resumed)
        resumed.close()
        finished = {x for x, _ in CALLS}
        assert finished == {2, 3}  # only the unfinished half evaluated
        assert [r.result for r in results] == [r.result for r in reference]
        assert CampaignState.load(resumed.path).done == 4

    def test_wrong_version_rejected(self, tmp_path):
        path = tmp_path / "checkpoint.json"
        path.write_text(json.dumps({"version": 99, "campaign_key": "x"}))
        with pytest.raises(ValueError, match="version"):
            CampaignState.load(str(path))

    def test_readonly_directory_still_loads(self, tmp_path, monkeypatch):
        """Inspecting an archived (read-only) legacy campaign must not
        crash on the upgrade's write attempt.  (chmod is no barrier to
        a root test run, so the denial is injected at the write.)"""
        legacy = self._stage(tmp_path)

        def denied(path, text):
            raise PermissionError("read-only file system: %s" % path)

        import repro.dse.checkpoint as checkpoint_module

        monkeypatch.setattr(checkpoint_module, "atomic_write_text", denied)
        state = CampaignState.load(legacy)
        assert state.done == 3
        assert state.status()["failed"] == 1
        assert not os.path.exists(os.path.join(str(tmp_path), JOURNAL_NAME))


class TestOpenOptions:
    def test_resume_honours_durability_settings(self, tmp_path):
        _, _, path = _complete_campaign(tmp_path, n=3)
        resumed = CampaignState.open(
            path, KEY, total=3, resume=True,
            fsync_every=1, compact_threshold=2,
        )
        assert resumed._journal.fsync_every == 1
        assert resumed._journal.compact_threshold == 2
        resumed.close()
        with pytest.raises(ValueError, match="fsync_every"):
            CampaignState.open(path, KEY, total=3, resume=True, fsync_every=0)
