"""Multi-fidelity ladder: screening, promotion, front fidelity, resume.

Fast suites exercise the lowfi evaluator, job twinning and promotion
logic on synthetic data; the ``slow`` suites pay for real evaluations
to pin the acceptance property — a ladder campaign reproduces the
full-fidelity Pareto front while invoking the expensive Monte-Carlo
evaluator on strictly fewer points.
"""

import json
import math

import pytest

from repro.dse import (
    FIDELITY_MODES,
    LOWFI_MEMORY_TARGET,
    Job,
    JobResult,
    ParameterSpace,
    evaluate_memory_lowfi,
    explore_memory,
    lowfi_twin,
    promotion_indices,
    run_ladder,
    run_memory_campaign,
)

TINY = dict(num_words=100, error_population=5_000)

OBJECTIVES = ("write_latency", "write_energy")


def _space():
    return ParameterSpace().add("subarray_rows", [128, 256, 512]).add(
        "wer_target", [1e-9, 1e-12]
    )


def _lowfi_spec(subarray_rows=128):
    from repro.nvsim.config import PAPER_ARRAY

    config = PAPER_ARRAY.to_dict()
    config["subarray_rows"] = subarray_rows
    return {"node_nm": 45, "config": config}


class TestLowfiEvaluator:
    def test_result_is_design_point_shaped(self):
        result = evaluate_memory_lowfi(_lowfi_spec(), seed=0)
        assert result["feasible"] is True
        assert result["fidelity"] == "low"
        point = result["point"]
        for field in (
            "config", "write_latency", "read_latency",
            "write_energy", "read_energy", "area",
        ):
            assert field in point
        assert point["ecc_bits"] == 0
        assert all(
            math.isfinite(point[k]) and point[k] > 0
            for k in ("write_latency", "write_energy", "area")
        )

    def test_deterministic_and_seed_free(self):
        first = evaluate_memory_lowfi(_lowfi_spec(), seed=0)
        second = evaluate_memory_lowfi(_lowfi_spec(), seed=999)
        assert first == second

    def test_monotone_in_subarray_rows(self):
        # The analytic screen must at least order organisation knobs
        # sensibly — that ordering is what promotion relies on.
        latencies = [
            evaluate_memory_lowfi(_lowfi_spec(rows), 0)["point"]["write_latency"]
            for rows in (128, 256, 512)
        ]
        assert latencies == sorted(latencies)
        assert latencies[0] < latencies[-1]


class TestLowfiTwin:
    def test_twin_has_distinct_identity(self):
        job = Job("vaet-memory", {"node_nm": 45, "config": {}})
        twin = lowfi_twin(job)
        assert twin.target == LOWFI_MEMORY_TARGET
        assert twin.spec["fidelity"] == "low"
        assert twin.key != job.key
        assert twin.fidelity == "low"
        assert job.fidelity == "high"
        # The original job's spec is untouched.
        assert "fidelity" not in job.spec

    def test_twin_preserves_scheduling_fields(self):
        job = Job("vaet-memory", {"node_nm": 45}, reseed=2, batch_size=4)
        twin = lowfi_twin(job)
        assert twin.reseed == 2
        assert twin.batch_size == 4


class TestPromotionIndices:
    ROWS = [
        {"a": 1.0, "b": 1.0},   # rank 0
        {"a": 2.0, "b": 2.0},   # rank 1
        {"a": 3.0, "b": 3.0},   # rank 2
        {"a": 1.0, "b": 1.0},   # duplicate of the frontier -> rank 0
    ]

    def test_frontier_band(self):
        assert promotion_indices(self.ROWS, ("a", "b"), 0) == [0, 3]
        assert promotion_indices(self.ROWS, ("a", "b"), 1) == [0, 1, 3]
        assert promotion_indices(self.ROWS, ("a", "b"), 9) == [0, 1, 2, 3]

    def test_none_rows_never_promote(self):
        rows = [None, {"a": 5.0, "b": 5.0}, None]
        assert promotion_indices(rows, ("a", "b")) == [1]
        assert promotion_indices([None, None], ("a", "b")) == []

    def test_non_finite_rows_never_promote(self):
        rows = [
            {"a": float("nan"), "b": 1.0},
            {"a": 2.0, "b": float("inf")},
            {"a": 3.0, "b": 3.0},
        ]
        assert promotion_indices(rows, ("a", "b")) == [2]

    def test_bad_arguments_rejected(self):
        with pytest.raises(ValueError, match="objective"):
            promotion_indices(self.ROWS, ())
        with pytest.raises(ValueError, match="promote_ranks"):
            promotion_indices(self.ROWS, ("a",), -1)


class TestRunLadderSynthetic:
    """Ladder mechanics on a stub evaluator (no Monte Carlo)."""

    def _execute(self, jobs):
        # Screen score mirrors the high-fidelity score exactly, so the
        # promotion is easy to reason about: x minimises "a".
        return [
            JobResult(job=job, ok=True, result={"a": float(job.spec["x"])})
            for job in jobs
        ]

    @staticmethod
    def _record(job, outcome):
        return dict(outcome.result) if outcome.ok else None

    def test_promotes_frontier_in_point_order(self):
        jobs = [Job("stub", {"x": x}) for x in (3, 1, 2, 1)]
        high_jobs, high_outcomes, trace = run_ladder(
            jobs, self._execute, self._record, ("a",), promote_ranks=0
        )
        assert [job.spec["x"] for job in high_jobs] == [1, 1]
        assert len(high_outcomes) == 2
        assert trace.screened == 4
        assert trace.promoted == 2
        assert trace.promoted_keys == [job.key for job in high_jobs]
        assert all(job.spec["fidelity"] == "low" for job in trace.low_jobs)
        assert trace.records(self._record) == [
            {"a": 3.0}, {"a": 1.0}, {"a": 2.0}, {"a": 1.0}
        ]

    def test_nothing_promotable_yields_empty_high_stage(self):
        jobs = [Job("stub", {"x": x}) for x in (1, 2)]

        def failing(batch):
            return [JobResult(job=j, ok=False, error="boom") for j in batch]

        high_jobs, high_outcomes, trace = run_ladder(
            jobs, failing, self._record, ("a",)
        )
        assert high_jobs == [] and high_outcomes == []
        assert trace.screened == 2 and trace.promoted == 0


class TestCampaignValidation:
    def test_unknown_fidelity_rejected(self):
        with pytest.raises(ValueError, match="unknown fidelity"):
            explore_memory(_space(), fidelity="medium", **TINY)

    @pytest.mark.parametrize("sampler", ["adaptive", "surrogate"])
    def test_model_samplers_reject_ladder(self, sampler, tmp_path):
        with pytest.raises(ValueError, match="static sampler"):
            explore_memory(_space(), sampler=sampler, fidelity="ladder", **TINY)
        with pytest.raises(ValueError, match="static sampler"):
            run_memory_campaign(
                _space(), str(tmp_path / "camp"),
                sampler=sampler, fidelity="low", **TINY,
            )

    def test_modes_constant(self):
        assert FIDELITY_MODES == ("high", "low", "ladder")


class TestSpecValidation:
    """CLI spec plumbing for the fidelity knobs."""

    def _spec(self, tmp_path, **extra):
        spec = dict(
            {"kind": "memory", "axes": {"subarray_rows": [128, 256]}}, **extra
        )
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(spec))
        return str(path)

    def test_ladder_spec_accepted_and_described(self, tmp_path, capsys):
        from repro.dse.__main__ import load_spec, main

        path = self._spec(tmp_path, fidelity="ladder", promote_ranks=2)
        assert load_spec(path)["fidelity"] == "ladder"
        assert main(["describe", path]) == 0
        out = capsys.readouterr().out
        assert "fidelity:  ladder (promote_ranks 2)" in out

    def test_bad_fidelity_specs_rejected(self, tmp_path):
        from repro.dse.__main__ import load_spec

        with pytest.raises(SystemExit, match="unknown fidelity"):
            load_spec(self._spec(tmp_path, fidelity="medium"))
        with pytest.raises(SystemExit, match="static sampler"):
            load_spec(self._spec(
                tmp_path, fidelity="ladder", sampler="surrogate"
            ))
        with pytest.raises(SystemExit, match="promote_ranks"):
            load_spec(self._spec(tmp_path, fidelity="ladder", promote_ranks=-1))

    def test_system_spec_rejects_fidelity(self, tmp_path):
        from repro.dse.__main__ import load_spec

        spec = {"kind": "system", "fidelity": "ladder"}
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(spec))
        with pytest.raises(SystemExit, match="memory campaigns only"):
            load_spec(str(path))


@pytest.mark.slow
class TestLadderAcceptance:
    """The tentpole acceptance property, on real evaluators."""

    def test_same_front_strictly_fewer_expensive_evaluations(self):
        space = _space()
        full = explore_memory(space, objectives=OBJECTIVES, **TINY)
        ladder = explore_memory(
            space, fidelity="ladder", objectives=OBJECTIVES, **TINY
        )
        # Identical Pareto front, down to the job keys (ladder confirm
        # jobs share content keys with the plain campaign's jobs).
        full_front = sorted(r["key"] for r in full.pareto(OBJECTIVES))
        ladder_front = sorted(r["key"] for r in ladder.pareto(OBJECTIVES))
        assert ladder_front == full_front
        # Strictly fewer expensive (Monte-Carlo) evaluations.
        assert ladder.fidelity is not None
        assert ladder.fidelity.screened == len(full.jobs)
        assert 0 < ladder.fidelity.promoted < len(full.jobs)
        assert len(ladder.jobs) == ladder.fidelity.promoted
        full_keys = {job.key for job in full.jobs}
        assert all(job.key in full_keys for job in ladder.jobs)
        # Screening rows cover the whole space and are joinable.
        screens = ladder.screening_records()
        assert len(screens) == ladder.fidelity.screened
        assert all("write_latency" in row for row in screens)

    def test_low_fidelity_sweep(self):
        result = explore_memory(_space(), fidelity="low", **TINY)
        assert all(o.ok for o in result.outcomes)
        records = result.records()
        assert len(records) == 6
        assert all(r["ecc_bits"] == 0 for r in records)
        assert all(
            job.target == LOWFI_MEMORY_TARGET and job.fidelity == "low"
            for job in result.jobs
        )


@pytest.mark.slow
class TestLadderResume:
    def _run(self, campaign_dir, **kwargs):
        return run_memory_campaign(
            _space(), campaign_dir, fidelity="ladder",
            objectives=OBJECTIVES, **TINY, **kwargs,
        )

    def test_resume_is_pure_cache(self, tmp_path):
        campaign_dir = str(tmp_path / "camp")
        first = self._run(campaign_dir)
        again = self._run(campaign_dir, resume=True)
        assert all(o.from_cache for o in again.outcomes)
        assert all(o.from_cache for o in again.fidelity.low_outcomes)
        assert [j.key for j in again.jobs] == [j.key for j in first.jobs]
        assert again.records() == first.records()
        assert again.fidelity.promoted_keys == first.fidelity.promoted_keys

    def test_kill_during_screen_resumes_identically(self, tmp_path):
        reference = self._run(str(tmp_path / "ref"))

        class Killed(Exception):
            pass

        def bomb(event):
            if event.done == 2:
                raise Killed()

        campaign_dir = str(tmp_path / "killed")
        with pytest.raises(Killed):
            self._run(campaign_dir, progress=bomb)
        resumed = self._run(campaign_dir, resume=True)
        assert resumed.records() == reference.records()
        assert resumed.fidelity.promoted_keys == reference.fidelity.promoted_keys
        # The screen finished before the kill replays from cache.
        cached = sum(1 for o in resumed.fidelity.low_outcomes if o.from_cache)
        assert cached >= 1

    def test_fidelity_is_part_of_the_campaign_signature(self, tmp_path):
        campaign_dir = str(tmp_path / "camp")
        self._run(campaign_dir)
        with pytest.raises(ValueError, match="different campaign"):
            run_memory_campaign(
                _space(), campaign_dir, resume=True,
                objectives=OBJECTIVES, **TINY,
            )
        with pytest.raises(ValueError, match="different campaign"):
            self._run(campaign_dir, resume=True, promote_ranks=3)
