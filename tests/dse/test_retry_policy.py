"""Unit tests for RetryPolicy: budgets, backoff schedule, reseeding."""

import pytest

from repro.dse import Job, RetryPolicy


class TestValidation:
    def test_defaults_are_valid(self):
        policy = RetryPolicy()
        assert policy.max_attempts == 3
        assert policy.backoff == 0.0

    def test_rejects_zero_attempts(self):
        with pytest.raises(ValueError, match="max_attempts"):
            RetryPolicy(max_attempts=0)

    def test_rejects_negative_backoff(self):
        with pytest.raises(ValueError, match="backoff"):
            RetryPolicy(backoff=-1.0)
        with pytest.raises(ValueError, match="backoff"):
            RetryPolicy(max_backoff=-0.1)

    def test_rejects_shrinking_factor(self):
        with pytest.raises(ValueError, match="backoff_factor"):
            RetryPolicy(backoff_factor=0.5)


class TestBudget:
    def test_should_retry_counts_total_invocations(self):
        policy = RetryPolicy(max_attempts=3)
        assert policy.should_retry(1)
        assert policy.should_retry(2)
        assert not policy.should_retry(3)

    def test_single_attempt_never_retries(self):
        assert not RetryPolicy(max_attempts=1).should_retry(1)


class TestBackoff:
    def test_exponential_schedule(self):
        policy = RetryPolicy(backoff=0.5, backoff_factor=2.0)
        assert policy.backoff_for(1) == pytest.approx(0.5)
        assert policy.backoff_for(2) == pytest.approx(1.0)
        assert policy.backoff_for(3) == pytest.approx(2.0)

    def test_cap(self):
        policy = RetryPolicy(backoff=10.0, backoff_factor=10.0, max_backoff=25.0)
        assert policy.backoff_for(1) == pytest.approx(10.0)
        assert policy.backoff_for(2) == pytest.approx(25.0)

    def test_zero_base_stays_zero(self):
        assert RetryPolicy().backoff_for(5) == 0.0

    def test_attempt_numbers_start_at_one(self):
        with pytest.raises(ValueError, match="start at 1"):
            RetryPolicy().backoff_for(0)


class TestFromDict:
    def test_none_passes_through(self):
        assert RetryPolicy.from_dict(None) is None

    def test_policy_passes_through(self):
        policy = RetryPolicy(max_attempts=5)
        assert RetryPolicy.from_dict(policy) is policy

    def test_builds_from_dict(self):
        policy = RetryPolicy.from_dict({"max_attempts": 4, "backoff": 0.25})
        assert policy.max_attempts == 4
        assert policy.backoff == 0.25

    def test_unknown_keys_rejected(self):
        with pytest.raises(ValueError, match="unknown retry option"):
            RetryPolicy.from_dict({"attempts": 4})


class TestReseed:
    def test_reseed_keeps_key_changes_seed(self):
        job = Job("reseed-test", {"x": 1})
        policy = RetryPolicy()
        second = policy.reseed(job, 1)
        third = policy.reseed(job, 2)
        assert second.key == job.key == third.key
        seeds = {job.seed, second.seed, third.seed}
        assert len(seeds) == 3  # decorrelated, deterministic streams

    def test_reseed_is_deterministic(self):
        job = Job("reseed-test", {"x": 1})
        assert RetryPolicy().reseed(job, 1).seed == Job(
            "reseed-test", {"x": 1}, reseed=1
        ).seed
