"""Campaign batching: chunked scheduling, fallback semantics, leasing.

``batch_size`` is a *scheduling hint*: it may change how many points a
worker evaluates per invocation (and how many tasks a pull/network
worker leases per round trip), but never the content keys, the seeds,
the cache addresses, or the results.  These tests pin that contract on
every layer — chunking, the batch-target registry and its fallbacks,
the resumable campaign on all four executors, and the CLI wiring.
"""

import os
import threading

import pytest

from repro.dse import (
    SELFTEST_TARGET,
    CampaignRunner,
    CampaignState,
    Job,
    NetworkExecutor,
    ProcessPoolExecutor,
    ResultCache,
    RetryPolicy,
    SerialExecutor,
    WorkerPullExecutor,
    WorkQueue,
    campaign_key,
    evaluate_memory_batch,
    evaluate_memory_point,
    get_batch_target,
    pareto_front,
    register_batch_target,
    register_target,
    run_checkpointed,
    run_network_worker,
    run_worker,
)
from repro.dse.executors import _chunk_jobs
from repro.dse.runner import _execute_batch, isolated_call

KEY = campaign_key({"kind": "batch-equivalence"})

EXECUTORS = ("serial", "pool", "worker-pull", "network")

STATUS_FIELDS = ("total", "done", "failed", "remaining")


def _jobs(points=7, batch_size=0, **extra):
    return [
        Job(
            SELFTEST_TARGET,
            dict({"x": i}, **extra),
            batch_size=batch_size,
        )
        for i in range(points)
    ]


def _summary(outcomes):
    return [
        (o.ok, o.result, (o.error or "").splitlines()[:1]) for o in outcomes
    ]


def _records(outcomes):
    return [
        {"value": o.result["value"], "cost": o.result["cost"]}
        for o in outcomes
        if o.ok
    ]


class TestChunking:
    def test_hinted_jobs_chunk_to_capacity(self):
        chunks = _chunk_jobs(_jobs(7, batch_size=3))
        assert [len(chunk) for chunk in chunks] == [3, 3, 1]

    def test_unhinted_jobs_stay_singletons(self):
        chunks = _chunk_jobs(_jobs(4))
        assert [len(chunk) for chunk in chunks] == [1, 1, 1, 1]

    def test_batch_of_one_is_a_singleton(self):
        chunks = _chunk_jobs(_jobs(3, batch_size=1))
        assert [len(chunk) for chunk in chunks] == [1, 1, 1]

    def test_mixed_targets_break_chunks(self):
        jobs = _jobs(2, batch_size=4) + [
            Job("other-target", {"x": 9}, batch_size=4)
        ] + _jobs(2, batch_size=4)
        chunks = _chunk_jobs(jobs)
        assert [len(chunk) for chunk in chunks] == [2, 1, 2]
        assert all(
            len({job.target for job in chunk}) == 1 for chunk in chunks
        )

    def test_first_job_of_chunk_sets_capacity(self):
        jobs = [Job(SELFTEST_TARGET, {"x": i}, batch_size=2) for i in range(2)]
        jobs += [Job(SELFTEST_TARGET, {"x": 9}, batch_size=5)]
        chunks = _chunk_jobs(jobs)
        assert [len(chunk) for chunk in chunks] == [2, 1]


class TestJobIdentity:
    def test_batch_size_excluded_from_key_and_seed(self):
        plain = Job(SELFTEST_TARGET, {"x": 1})
        hinted = Job(SELFTEST_TARGET, {"x": 1}, batch_size=8)
        assert plain.key == hinted.key
        assert plain.seed == hinted.seed

    def test_retry_reseed_preserves_batch_size(self):
        policy = RetryPolicy(max_attempts=3)
        job = Job(SELFTEST_TARGET, {"x": 1}, batch_size=4)
        retried = policy.reseed(job, attempts=1)
        assert retried.reseed == 1
        assert retried.batch_size == 4
        assert retried.key == job.key

    def test_task_file_records_batch_hint(self, tmp_path):
        queue = WorkQueue(str(tmp_path))
        queue.ensure()
        hinted_job = Job(SELFTEST_TARGET, {"x": 0}, batch_size=3)
        hinted = queue.read_task(queue.publish(hinted_job))
        assert hinted["batch"] == 3
        plain = queue.read_task(queue.publish(Job(SELFTEST_TARGET, {"x": 1})))
        assert "batch" not in plain


class TestBatchRegistry:
    def test_selftest_has_no_batch_twin(self):
        assert get_batch_target(SELFTEST_TARGET) is None

    def test_memory_twin_registered(self):
        from repro.dse import MEMORY_TARGET

        assert get_batch_target(MEMORY_TARGET) is evaluate_memory_batch

    def test_unknown_target_returns_none(self):
        assert get_batch_target("no-such-target") is None

    def test_isolated_call_matches_execute_error_format(self):
        ok, result, error, elapsed = isolated_call(
            lambda spec, seed: spec["x"] * 2, {"x": 4}, 0
        )
        assert (ok, result, error) == (True, 8, None)
        assert elapsed >= 0.0

        def boom(spec, seed):
            raise ValueError("bad point")

        ok, result, error, elapsed = isolated_call(boom, {"x": 4}, 0)
        assert not ok and result is None
        assert error.startswith("ValueError: bad point")
        assert "Traceback" in error


class _BatchProbe:
    """A target + batch twin pair that records how it was invoked."""

    def __init__(self, name, mode="ok"):
        self.name = name
        self.mode = mode
        self.batch_calls = []
        register_target(name, self.scalar)
        register_batch_target(name, self.batch)

    def scalar(self, spec, seed):
        if spec.get("fail"):
            raise RuntimeError("scalar failure x=%d" % spec["x"])
        return {"value": spec["x"] * 2, "seed": seed}

    def batch(self, specs, seeds):
        self.batch_calls.append(len(specs))
        if self.mode == "raise":
            raise RuntimeError("batch twin exploded")
        if self.mode == "short":
            return [(True, {"value": 0}, None, 0.0)]  # wrong length
        return [
            isolated_call(self.scalar, spec, seed)
            for spec, seed in zip(specs, seeds)
        ]


class TestBatchExecution:
    def _run(self, probe, points=7, batch_size=3, **extra):
        jobs = [
            Job(probe.name, dict({"x": i}, **extra)) for i in range(points)
        ]
        batched = CampaignRunner(workers=1, batch_size=batch_size).run(jobs)
        reference = CampaignRunner(workers=1).run(jobs)
        return batched, reference

    def test_batched_results_identical_to_scalar(self):
        probe = _BatchProbe("batch-probe-ok")
        batched, reference = self._run(probe)
        assert _summary(batched) == _summary(reference)
        # Two full chunks went through the twin; the trailing singleton
        # takes the scalar path by design.
        assert probe.batch_calls == [3, 3]

    def test_twin_exception_falls_back_to_scalar(self):
        probe = _BatchProbe("batch-probe-raise", mode="raise")
        batched, reference = self._run(probe)
        assert _summary(batched) == _summary(reference)
        assert all(o.ok for o in batched)

    def test_wrong_length_falls_back_to_scalar(self):
        probe = _BatchProbe("batch-probe-short", mode="short")
        batched, reference = self._run(probe)
        assert _summary(batched) == _summary(reference)

    def test_per_point_isolation_inside_batch(self):
        probe = _BatchProbe("batch-probe-isolated")
        jobs = [
            Job(probe.name, {"x": i, "fail": 1 if i == 1 else 0})
            for i in range(3)
        ]
        outcomes = CampaignRunner(workers=1, batch_size=3).run(jobs)
        assert [o.ok for o in outcomes] == [True, False, True]
        assert "scalar failure x=1" in outcomes[1].error

    def test_execute_batch_empty_payload(self):
        assert _execute_batch([]) == []

    def test_runner_rejects_negative_batch_size(self):
        with pytest.raises(ValueError):
            CampaignRunner(batch_size=-1)

    def test_pool_executor_batches_identically(self):
        probe = _BatchProbe("batch-probe-pool")
        jobs = [Job(probe.name, {"x": i}) for i in range(6)]
        reference = CampaignRunner(workers=1).run(jobs)
        pool = CampaignRunner(
            workers=2,
            executor=ProcessPoolExecutor(workers=2),
            batch_size=2,
        )
        assert _summary(pool.run(jobs)) == _summary(reference)

    def test_cache_addresses_unchanged_by_batching(self, tmp_path):
        probe = _BatchProbe("batch-probe-cache")
        jobs = [Job(probe.name, {"x": i}) for i in range(4)]
        cache = ResultCache(str(tmp_path / "cache"))
        cold = CampaignRunner(workers=1, cache=cache, batch_size=2).run(jobs)
        assert not any(o.from_cache for o in cold)
        # An *unbatched* runner over the same cache must replay every
        # point: batching did not move the cache keys.
        warm = CampaignRunner(workers=1, cache=cache).run(jobs)
        assert all(o.from_cache for o in warm)
        assert [o.result for o in warm] == [o.result for o in cold]


class ExecutorHarness:
    """One campaign directory wired to one executor implementation."""

    def __init__(self, name, campaign_dir):
        self.name = name
        self.campaign_dir = str(campaign_dir)
        self.threads = []
        if name == "serial":
            self.executor = SerialExecutor()
        elif name == "pool":
            self.executor = ProcessPoolExecutor(workers=2)
        elif name == "worker-pull":
            self.executor = WorkerPullExecutor(
                self.campaign_dir, lease_ttl=10.0, poll=0.005, timeout=60
            )
            thread = threading.Thread(
                target=run_worker,
                args=(self.campaign_dir,),
                kwargs=dict(worker_id="batcher", lease_ttl=10.0, poll=0.005),
                daemon=True,
            )
            thread.start()
            self.threads.append(thread)
        elif name == "network":
            self.executor = NetworkExecutor(
                self.campaign_dir, lease_ttl=10.0, poll=0.005, timeout=60
            )
            thread = threading.Thread(
                target=run_network_worker,
                args=(self.executor.address,),
                kwargs=dict(
                    worker_id="batcher", poll=0.005, backoff=0.05,
                    reconnect_timeout=20.0,
                ),
                daemon=True,
            )
            thread.start()
            self.threads.append(thread)
        else:  # pragma: no cover - parametrisation bug
            raise ValueError(name)

    def runner(self, batch_size):
        cache = ResultCache(os.path.join(self.campaign_dir, "cache"))
        return CampaignRunner(
            workers=2, cache=cache, executor=self.executor,
            batch_size=batch_size,
        )

    def state(self, total):
        path = os.path.join(self.campaign_dir, "journal.jsonl")
        return CampaignState.open(path, KEY, total=total)

    def close(self):
        self.executor.close()
        for thread in self.threads:
            thread.join(timeout=30)
        assert all(not t.is_alive() for t in self.threads)


@pytest.fixture(params=EXECUTORS)
def harness(request, tmp_path):
    instance = ExecutorHarness(request.param, tmp_path / "camp")
    yield instance
    instance.close()


class TestExecutorEquivalence:
    """Batched campaigns match the unbatched serial reference everywhere.

    The acceptance bar of the batching tentpole: same records, same
    status, same Pareto front for identical seeds on all four
    executors, with chunk leasing live on worker-pull and network.
    """

    def test_batched_campaign_matches_unbatched_reference(
        self, harness, tmp_path
    ):
        jobs = _jobs(7)
        ref_dir = tmp_path / "reference"
        ref_runner = CampaignRunner(
            workers=1, cache=ResultCache(str(ref_dir / "cache"))
        )
        ref_state = CampaignState.open(
            str(ref_dir / "journal.jsonl"), KEY, total=len(jobs)
        )
        reference = run_checkpointed(jobs, ref_runner, ref_state)

        outcomes = run_checkpointed(
            jobs, harness.runner(batch_size=3), harness.state(len(jobs))
        )
        assert _summary(outcomes) == _summary(reference)
        assert _records(outcomes) == _records(reference)
        assert pareto_front(
            _records(outcomes), ("value", "cost")
        ) == pareto_front(_records(reference), ("value", "cost"))

        reloaded = CampaignState.load(
            os.path.join(harness.campaign_dir, "journal.jsonl")
        )
        ref_status = ref_state.status()
        status = reloaded.status()
        assert {f: status[f] for f in STATUS_FIELDS} == {
            f: ref_status[f] for f in STATUS_FIELDS
        }

    def test_each_point_evaluated_exactly_once(
        self, harness, tmp_path, monkeypatch
    ):
        scratch = tmp_path / "invocations"
        monkeypatch.setenv("REPRO_DSE_SELFTEST_DIR", str(scratch))
        jobs = _jobs(6, count=True)
        outcomes = run_checkpointed(
            jobs, harness.runner(batch_size=2), harness.state(len(jobs))
        )
        assert all(o.ok for o in outcomes)
        counts = {
            marker.name: marker.stat().st_size for marker in scratch.iterdir()
        }
        assert counts == {"count-%d" % i: 1 for i in range(6)}


class TestMemoryBatchTwin:
    def _spec(self, **overrides):
        from repro.nvsim.config import MemoryConfig
        from repro.vaet.explorer import DesignConstraints

        spec = {
            "node_nm": 45,
            "config": MemoryConfig(word_bits=16).to_dict(),
            "constraints": DesignConstraints().to_dict(),
            "num_words": 60,
            "error_population": 2000,
            "seed": 2018,
        }
        spec.update(overrides)
        return spec

    def test_batch_matches_pointwise_evaluation(self):
        specs = [self._spec(), self._spec(node_nm=65)]
        seeds = [0, 1]
        outcomes = evaluate_memory_batch(specs, seeds)
        assert len(outcomes) == 2
        for (ok, result, error, elapsed), spec, seed in zip(
            outcomes, specs, seeds
        ):
            assert ok and error is None and elapsed >= 0.0
            assert result == evaluate_memory_point(spec, seed)

    def test_batch_isolates_per_point_failures(self):
        bad = self._spec()
        del bad["config"]
        outcomes = evaluate_memory_batch(
            [self._spec(), bad, self._spec(node_nm=65)], [0, 0, 0]
        )
        assert [ok for ok, _, _, _ in outcomes] == [True, False, True]
        assert "KeyError" in outcomes[1][2]


class TestExploreMemoryBatched:
    def test_records_identical_to_unbatched(self, tmp_path):
        from repro.dse import ParameterSpace, explore_memory

        space = ParameterSpace()
        space.add("subarray_rows", [128, 256])
        space.add("node_nm", [45, 65])
        settings = dict(num_words=60, error_population=2000)
        plain = explore_memory(
            space, cache_dir=str(tmp_path / "plain"), **settings
        )
        batched = explore_memory(
            space, cache_dir=str(tmp_path / "batched"), batch_size=4,
            **settings,
        )
        assert batched.records() == plain.records()
        assert batched.pareto() == plain.pareto()
        assert [o.ok for o in batched.outcomes] == [
            o.ok for o in plain.outcomes
        ]


class TestCLI:
    SPEC = {
        "kind": "memory",
        "axes": {"subarray_rows": [256], "node_nm": [45, 65]},
        "settings": {"num_words": 60, "error_population": 2000},
        "batch": 2,
    }

    def _write_spec(self, tmp_path, spec):
        import json

        path = tmp_path / "spec.json"
        path.write_text(json.dumps(spec))
        return str(path)

    @pytest.mark.parametrize("bad", [0, -1, True, "2", 1.5])
    def test_load_spec_rejects_bad_batch(self, tmp_path, bad):
        from repro.dse.__main__ import load_spec

        with pytest.raises(SystemExit, match="batch"):
            load_spec(self._write_spec(tmp_path, dict(self.SPEC, batch=bad)))

    def test_load_spec_accepts_batch(self, tmp_path):
        from repro.dse.__main__ import load_spec

        spec = load_spec(self._write_spec(tmp_path, self.SPEC))
        assert spec["batch"] == 2

    def test_batch_size_flag_must_be_positive(self, tmp_path, capsys):
        from repro.dse.__main__ import main

        spec = self._write_spec(tmp_path, self.SPEC)
        with pytest.raises(SystemExit):
            main(["run", spec, "--dir", str(tmp_path / "camp"),
                  "--batch-size", "0"])

    def test_run_with_spec_batch_and_override(self, tmp_path, capsys):
        from repro.dse.__main__ import main

        spec = self._write_spec(tmp_path, self.SPEC)
        camp = str(tmp_path / "camp")
        assert main(["run", spec, "--dir", camp, "--batch-size", "2",
                     "--quiet"]) == 0
        out = capsys.readouterr().out
        assert "campaign finished" in out
