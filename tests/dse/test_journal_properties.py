"""Property-based round-trip tests for the JSONL journal.

Random event sequences (seeded ``random`` — no extra dependencies) are
applied both to a :class:`CampaignState` on disk and to a plain
in-memory reference model.  After interleaved compactions, reloads and
torn-tail injections, replaying the journal must yield exactly the
model's ``done`` / ``failed`` / ``quarantined`` sets and attempt
counts.

The tear oracle is non-circular: a copy of the model is snapshotted at
every journal line boundary, so after truncating the file the expected
state is the snapshot belonging to the surviving prefix — never
re-derived from the code under test.
"""

import copy
import os
import random

from repro.dse import CampaignState, Job, JobResult, campaign_key

KEY = campaign_key({"kind": "journal-props"})

N_POINTS = 12


class ReferenceModel:
    """What the journal *means*, as plain dicts and sets."""

    def __init__(self):
        self.completed = {}  # key -> {"ok", "error", "elapsed"}
        self.attempts = {}
        self.quarantined = set()

    def record(self, key, ok, error, elapsed, attempts):
        self.completed[key] = {"ok": ok, "error": error, "elapsed": elapsed}
        if attempts > self.attempts.get(key, 0):
            self.attempts[key] = attempts
        if ok:
            self.quarantined.discard(key)

    def retry(self, key, attempt):
        if attempt > self.attempts.get(key, 0):
            self.attempts[key] = attempt

    def quarantine(self, key, attempts):
        if key in self.quarantined:
            return
        self.quarantined.add(key)
        if attempts > self.attempts.get(key, 0):
            self.attempts[key] = attempts

    def release(self, key):
        if key not in self.quarantined:
            return
        self.quarantined.discard(key)
        self.attempts.pop(key, None)
        entry = self.completed.get(key)
        if entry is not None and not entry["ok"]:
            self.completed.pop(key)

    @property
    def done_keys(self):
        return {k for k, e in self.completed.items() if e["ok"]}

    @property
    def failed_keys(self):
        return {k for k, e in self.completed.items() if not e["ok"]}


def _check(state, model):
    assert set(state.completed) == set(model.completed)
    for key, entry in model.completed.items():
        assert state.completed[key] == entry
    assert state.quarantined == model.quarantined
    assert state.attempts == model.attempts
    assert state.done == len(model.completed)
    assert state.failed == len(model.failed_keys)


def _run_sequence(tmp_path, seed, steps=120):
    rng = random.Random(seed)
    jobs = [Job("props-echo", {"x": i}) for i in range(N_POINTS)]
    path = str(tmp_path / ("journal-%d.jsonl" % seed))
    # Tiny compaction threshold so sequences cross it several times.
    state = CampaignState.open(
        path, KEY, total=N_POINTS, compact_threshold=25
    )
    model = ReferenceModel()

    # Journal size (always a newline-terminated line boundary) ->
    # frozen model copy.  Auto-compaction shrinks the file; stale
    # boundaries are dropped when that happens.
    snapshots = {}
    boundaries = []

    def snap():
        size = os.path.getsize(path)
        if boundaries and size < boundaries[-1]:
            snapshots.clear()
            del boundaries[:]
        if size == 0 or size in snapshots:
            return
        with open(path, "rb") as handle:
            handle.seek(-1, os.SEEK_END)
            if handle.read(1) != b"\n":
                return  # unterminated tail: not a boundary
        boundaries.append(size)
        snapshots[size] = copy.deepcopy(model)

    for step in range(steps):
        op = rng.choice(
            ["done", "failed", "retry", "quarantine", "release",
             "compact", "reload", "tear", "tear"]
        )
        job = rng.choice(jobs)
        # Unique elapsed per step: the dedupe path must never conflate
        # two distinct completions in this harness.
        elapsed = step + round(rng.uniform(0.0, 1.0), 6)
        if op == "done":
            attempts = rng.randint(1, 4)
            state.record(JobResult(
                job=job, ok=True, result={"v": 1},
                elapsed=elapsed, attempts=attempts,
            ))
            model.record(job.key, True, None, elapsed, attempts)
        elif op == "failed":
            attempts = rng.randint(1, 4)
            error = "boom-%d" % rng.randint(0, 3)
            state.record(JobResult(
                job=job, ok=False, error=error,
                elapsed=elapsed, attempts=attempts,
            ))
            model.record(job.key, False, error, elapsed, attempts)
        elif op == "retry":
            attempt = rng.randint(1, 4)
            state.record_retry(job.key, attempt, "flaky", 0.0)
            model.retry(job.key, attempt)
        elif op == "quarantine":
            attempts = rng.randint(1, 4)
            state.quarantine(job.key, attempts)
            model.quarantine(job.key, attempts)
        elif op == "release":
            state.release([job.key])
            model.release(job.key)
        elif op == "compact":
            state.save()
            snapshots.clear()
            del boundaries[:]
        elif op == "reload":
            state.close()
            state = CampaignState.load(path)
            _check(state, model)
        elif op == "tear" and len(boundaries) >= 2:
            state.close()
            index = rng.randrange(1, len(boundaries))
            cut = rng.randint(1, boundaries[index] - boundaries[index - 1])
            with open(path, "r+b") as handle:
                handle.truncate(boundaries[index] - cut)
            if cut == 1:
                # Only the terminator went: the final record is whole
                # and recovery keeps it.
                model = copy.deepcopy(snapshots[boundaries[index]])
            else:
                model = copy.deepcopy(snapshots[boundaries[index - 1]])
            # Sizes past the cut may be reached again with different
            # content: their snapshots are dead.
            for stale in boundaries[index:]:
                snapshots.pop(stale, None)
            del boundaries[index:]
            state = CampaignState.load(path)
            _check(state, model)
        snap()
        _check(state, model)

    state.close()
    reloaded = CampaignState.load(path)
    _check(reloaded, model)
    reloaded.save()  # final compaction must be lossless too
    reloaded.close()
    _check(CampaignState.load(path), model)


def test_random_sequences_round_trip(tmp_path):
    for seed in range(10):
        _run_sequence(tmp_path, seed)


def test_long_sequence_with_heavy_compaction(tmp_path):
    _run_sequence(tmp_path, seed=1234, steps=400)
