"""Tests for content-hash job keys and the on-disk result cache."""

import json
import os

import pytest

from repro.dse import Job, ResultCache, canonical_json, content_key
from repro.nvsim.config import MemoryConfig


class TestCanonicalJson:
    def test_key_order_independent(self):
        assert canonical_json({"b": 1, "a": 2}) == canonical_json({"a": 2, "b": 1})

    def test_float_repr_roundtrip(self):
        text = canonical_json({"x": 1e-15})
        assert json.loads(text)["x"] == 1e-15

    def test_non_json_types_raise(self):
        with pytest.raises(TypeError):
            canonical_json({"config": MemoryConfig()})

    def test_nan_rejected(self):
        with pytest.raises(ValueError):
            canonical_json({"x": float("nan")})


class TestJobKeys:
    def test_identical_specs_identical_keys(self):
        a = Job("t", {"x": 1, "y": [1, 2]})
        b = Job("t", {"y": [1, 2], "x": 1})
        assert a.key == b.key

    def test_target_distinguishes(self):
        spec = {"x": 1}
        assert Job("t1", spec).key != Job("t2", spec).key

    def test_config_field_change_changes_key(self):
        # The cache-invalidation property: any config delta re-keys.
        base = MemoryConfig()
        changed = MemoryConfig(subarray_rows=128)
        a = Job("t", {"config": base.to_dict()})
        b = Job("t", {"config": changed.to_dict()})
        assert a.key != b.key

    def test_seed_is_content_derived(self):
        a = Job("t", {"x": 1})
        b = Job("t", {"x": 1})
        assert a.seed == b.seed
        assert a.seed != Job("t", {"x": 2}).seed

    def test_unhashable_spec_raises_at_submission(self):
        with pytest.raises(TypeError):
            Job("t", {"config": object()})


class TestResultCache:
    def test_roundtrip(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        key = content_key("t", {"x": 1})
        assert cache.get(key) is None
        cache.put(key, {"result": {"v": 1.5}})
        assert cache.get(key) == {"result": {"v": 1.5}}
        assert key in cache
        assert len(cache) == 1

    def test_miss_then_hit_counters(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        key = content_key("t", {"x": 2})
        cache.get(key)
        cache.put(key, {"result": 1})
        cache.get(key)
        stats = cache.stats()
        assert stats["hits"] == 1 and stats["misses"] == 1 and stats["writes"] == 1
        assert stats["hit_rate"] == pytest.approx(0.5)

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        key = content_key("t", {"x": 3})
        cache.put(key, {"result": 1})
        path = os.path.join(str(tmp_path), key[:2], key + ".json")
        with open(path, "w") as handle:
            handle.write("{not json")
        assert cache.get(key) is None

    def test_config_change_invalidates(self, tmp_path):
        # A changed MemoryConfig field must never serve the old record.
        cache = ResultCache(str(tmp_path))
        old = Job("t", {"config": MemoryConfig().to_dict()})
        cache.put(old.key, {"result": "old"})
        new = Job("t", {"config": MemoryConfig(word_bits=128).to_dict()})
        assert cache.get(new.key) is None
        assert cache.get(old.key) == {"result": "old"}

    def test_empty_cache_len(self, tmp_path):
        assert len(ResultCache(str(tmp_path / "nonexistent"))) == 0

    def test_corrupt_entry_is_not_a_member(self, tmp_path):
        """Membership must agree with get(): corrupt files are misses."""
        cache = ResultCache(str(tmp_path))
        key = content_key("t", {"x": 4})
        cache.put(key, {"result": 1})
        assert key in cache
        path = os.path.join(str(tmp_path), key[:2], key + ".json")
        with open(path, "w") as handle:
            handle.write("{truncated")
        assert cache.get(key) is None
        assert key not in cache

    def test_membership_does_not_touch_counters(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        key = content_key("t", {"x": 5})
        cache.put(key, {"result": 1})
        assert key in cache
        assert content_key("t", {"x": 6}) not in cache
        stats = cache.stats()
        assert stats["hits"] == 0 and stats["misses"] == 0

    def test_purge_corrupt_reports_removals(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        good = content_key("t", {"x": 7})
        bad = content_key("t", {"x": 8})
        cache.put(good, {"result": "keep"})
        cache.put(bad, {"result": "doomed"})
        path = os.path.join(str(tmp_path), bad[:2], bad + ".json")
        with open(path, "w") as handle:
            handle.write("]")
        removed = cache.purge_corrupt()
        assert removed == [bad]
        assert not os.path.exists(path)
        assert cache.get(good) == {"result": "keep"}
        assert len(cache) == 1

    def test_purge_corrupt_empty_and_clean_caches(self, tmp_path):
        assert ResultCache(str(tmp_path / "missing")).purge_corrupt() == []
        cache = ResultCache(str(tmp_path))
        cache.put(content_key("t", {"x": 9}), {"result": 1})
        assert cache.purge_corrupt() == []


class TestCorruptQuarantine:
    """Regression: a torn record must not be re-read as a miss forever.

    Before the fix, ``get()`` on a corrupt file returned None but left
    the bad bytes in place — every future lookup re-parsed them, the
    slot could never hit, and nothing flagged the disk fault.  Now the
    first contact renames the file to ``*.corrupt``: the slot becomes a
    plain miss that the next ``put`` repairs, and the evidence
    survives for forensics.
    """

    def _corrupt(self, cache, key):
        cache.put(key, {"result": "doomed"})
        path = cache.path_for(key)
        with open(path, "w") as handle:
            handle.write('{"result": "do')  # torn mid-write
        return path

    def test_get_quarantines_and_put_repairs(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        key = content_key("t", {"x": 10})
        path = self._corrupt(cache, key)
        assert cache.get(key) is None
        assert not os.path.exists(path)  # bad bytes moved aside...
        assert os.path.exists(path + ".corrupt")  # ...not destroyed
        assert cache.corrupt == 1
        cache.put(key, {"result": "fresh"})
        assert cache.get(key) == {"result": "fresh"}

    def test_second_lookup_is_a_plain_miss(self, tmp_path):
        """The quarantine happens exactly once, not on every lookup."""
        cache = ResultCache(str(tmp_path))
        key = content_key("t", {"x": 11})
        self._corrupt(cache, key)
        assert cache.get(key) is None
        assert cache.get(key) is None
        assert cache.corrupt == 1  # one rename, then ordinary misses
        assert cache.stats()["misses"] == 2

    def test_membership_also_quarantines(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        key = content_key("t", {"x": 12})
        path = self._corrupt(cache, key)
        assert key not in cache
        assert os.path.exists(path + ".corrupt")

    def test_runner_reevaluates_quarantined_point(self, tmp_path):
        """End to end: a torn cache record re-runs the point and the
        repaired record serves the next campaign from cache."""
        from repro.dse import CampaignRunner, register_target

        calls = []

        def counting(spec, seed):
            calls.append(spec["x"])
            return {"v": spec["x"]}

        register_target("quarantine-count", counting)
        cache = ResultCache(str(tmp_path))
        job = Job("quarantine-count", {"x": 1})
        CampaignRunner(workers=1, cache=cache).run([job])
        with open(cache.path_for(job.key), "w") as handle:
            handle.write("{torn")
        (second,) = CampaignRunner(workers=1, cache=cache).run([job])
        assert second.ok and not second.from_cache
        assert calls == [1, 1]  # re-evaluated once, not served the tear
        (third,) = CampaignRunner(workers=1, cache=cache).run([job])
        assert third.from_cache  # the put() repaired the slot
        assert calls == [1, 1]

    def test_quarantine_spares_a_concurrently_repaired_record(self, tmp_path):
        """TOCTOU guard: if another writer repaired the slot between
        the failed parse and the rename, the valid record survives."""
        cache = ResultCache(str(tmp_path))
        key = content_key("t", {"x": 14})
        cache.put(key, {"result": "fresh"})
        # Simulate the race: _quarantine fires although the slot now
        # holds a valid record (the corrupt bytes were already fixed).
        cache._quarantine(cache.path_for(key))
        assert cache.get(key) == {"result": "fresh"}
        assert cache.corrupt == 0
        assert not os.path.exists(cache.path_for(key) + ".corrupt")

    def test_purge_corrupt_collects_quarantined_files(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        key = content_key("t", {"x": 13})
        path = self._corrupt(cache, key)
        assert cache.get(key) is None  # quarantined
        removed = cache.purge_corrupt()
        assert removed == [key]
        assert not os.path.exists(path + ".corrupt")

    def test_purge_corrupt_removes_unreadable_records(self, tmp_path):
        """A record whose *read* fails (disk fault, dangling link) is
        not parse-quarantined, but purge must still delete and report
        it — it promised to reclaim the cache."""
        cache = ResultCache(str(tmp_path))
        key = content_key("t", {"x": 15})
        cache.put(key, {"result": 1})
        path = cache.path_for(key)
        os.unlink(path)
        os.symlink(str(tmp_path / "gone"), path)  # open() -> OSError
        assert cache.get(key) is None
        assert not os.path.exists(path + ".corrupt")  # not a parse error
        removed = cache.purge_corrupt()
        assert removed == [key]
        assert not os.path.lexists(path)
