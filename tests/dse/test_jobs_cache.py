"""Tests for content-hash job keys and the on-disk result cache."""

import json
import os

import pytest

from repro.dse import Job, ResultCache, canonical_json, content_key
from repro.nvsim.config import MemoryConfig


class TestCanonicalJson:
    def test_key_order_independent(self):
        assert canonical_json({"b": 1, "a": 2}) == canonical_json({"a": 2, "b": 1})

    def test_float_repr_roundtrip(self):
        text = canonical_json({"x": 1e-15})
        assert json.loads(text)["x"] == 1e-15

    def test_non_json_types_raise(self):
        with pytest.raises(TypeError):
            canonical_json({"config": MemoryConfig()})

    def test_nan_rejected(self):
        with pytest.raises(ValueError):
            canonical_json({"x": float("nan")})


class TestJobKeys:
    def test_identical_specs_identical_keys(self):
        a = Job("t", {"x": 1, "y": [1, 2]})
        b = Job("t", {"y": [1, 2], "x": 1})
        assert a.key == b.key

    def test_target_distinguishes(self):
        spec = {"x": 1}
        assert Job("t1", spec).key != Job("t2", spec).key

    def test_config_field_change_changes_key(self):
        # The cache-invalidation property: any config delta re-keys.
        base = MemoryConfig()
        changed = MemoryConfig(subarray_rows=128)
        a = Job("t", {"config": base.to_dict()})
        b = Job("t", {"config": changed.to_dict()})
        assert a.key != b.key

    def test_seed_is_content_derived(self):
        a = Job("t", {"x": 1})
        b = Job("t", {"x": 1})
        assert a.seed == b.seed
        assert a.seed != Job("t", {"x": 2}).seed

    def test_unhashable_spec_raises_at_submission(self):
        with pytest.raises(TypeError):
            Job("t", {"config": object()})


class TestResultCache:
    def test_roundtrip(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        key = content_key("t", {"x": 1})
        assert cache.get(key) is None
        cache.put(key, {"result": {"v": 1.5}})
        assert cache.get(key) == {"result": {"v": 1.5}}
        assert key in cache
        assert len(cache) == 1

    def test_miss_then_hit_counters(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        key = content_key("t", {"x": 2})
        cache.get(key)
        cache.put(key, {"result": 1})
        cache.get(key)
        stats = cache.stats()
        assert stats["hits"] == 1 and stats["misses"] == 1 and stats["writes"] == 1
        assert stats["hit_rate"] == pytest.approx(0.5)

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        key = content_key("t", {"x": 3})
        cache.put(key, {"result": 1})
        path = os.path.join(str(tmp_path), key[:2], key + ".json")
        with open(path, "w") as handle:
            handle.write("{not json")
        assert cache.get(key) is None

    def test_config_change_invalidates(self, tmp_path):
        # A changed MemoryConfig field must never serve the old record.
        cache = ResultCache(str(tmp_path))
        old = Job("t", {"config": MemoryConfig().to_dict()})
        cache.put(old.key, {"result": "old"})
        new = Job("t", {"config": MemoryConfig(word_bits=128).to_dict()})
        assert cache.get(new.key) is None
        assert cache.get(old.key) == {"result": "old"}

    def test_empty_cache_len(self, tmp_path):
        assert len(ResultCache(str(tmp_path / "nonexistent"))) == 0

    def test_corrupt_entry_is_not_a_member(self, tmp_path):
        """Membership must agree with get(): corrupt files are misses."""
        cache = ResultCache(str(tmp_path))
        key = content_key("t", {"x": 4})
        cache.put(key, {"result": 1})
        assert key in cache
        path = os.path.join(str(tmp_path), key[:2], key + ".json")
        with open(path, "w") as handle:
            handle.write("{truncated")
        assert cache.get(key) is None
        assert key not in cache

    def test_membership_does_not_touch_counters(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        key = content_key("t", {"x": 5})
        cache.put(key, {"result": 1})
        assert key in cache
        assert content_key("t", {"x": 6}) not in cache
        stats = cache.stats()
        assert stats["hits"] == 0 and stats["misses"] == 0

    def test_purge_corrupt_reports_removals(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        good = content_key("t", {"x": 7})
        bad = content_key("t", {"x": 8})
        cache.put(good, {"result": "keep"})
        cache.put(bad, {"result": "doomed"})
        path = os.path.join(str(tmp_path), bad[:2], bad + ".json")
        with open(path, "w") as handle:
            handle.write("]")
        removed = cache.purge_corrupt()
        assert removed == [bad]
        assert not os.path.exists(path)
        assert cache.get(good) == {"result": "keep"}
        assert len(cache) == 1

    def test_purge_corrupt_empty_and_clean_caches(self, tmp_path):
        assert ResultCache(str(tmp_path / "missing")).purge_corrupt() == []
        cache = ResultCache(str(tmp_path))
        cache.put(content_key("t", {"x": 9}), {"result": 1})
        assert cache.purge_corrupt() == []
