"""Worker-pull protocol tests: queue, leases, real workers, real kills.

The conformance suite proves the executor's campaign *semantics*; this
module proves the distributed mechanics — lease reclaim after a worker
dies (as subprocesses, with a real SIGKILL), heartbeats, torn result
quarantine, stop sentinels, and the stall guard.
"""

import json
import os
import signal
import threading
import time

import pytest

from repro.dse import (
    SELFTEST_TARGET,
    CampaignRunner,
    Job,
    ResultCache,
    SerialExecutor,
    WorkerPullExecutor,
    make_executor,
    run_worker,
)
from repro.dse.executors import (
    TORN_RESULT,
    LeaseJournal,
    LeaseTable,
    WorkerStalled,
    WorkQueue,
    _Heartbeat,
    task_id,
)


def _jobs(points, **extra):
    return [Job(SELFTEST_TARGET, dict({"x": i}, **extra)) for i in range(points)]


class TestWorkQueue:
    def test_publish_is_idempotent_and_reseed_aware(self, tmp_path):
        queue = WorkQueue(str(tmp_path))
        queue.ensure()
        job = Job(SELFTEST_TARGET, {"x": 1})
        tid = queue.publish(job)
        assert tid == task_id(job) == "%s-0" % job.key
        before = os.path.getmtime(queue.task_path(tid))
        queue.publish(job)  # second publish must not rewrite
        assert os.path.getmtime(queue.task_path(tid)) == before
        retried = Job(job.target, job.spec, reseed=2)
        assert queue.publish(retried) == "%s-2" % job.key
        assert len(queue.pending_tasks()) == 2

    def test_roundtrip_result(self, tmp_path):
        queue = WorkQueue(str(tmp_path))
        queue.ensure()
        tid = queue.publish(Job(SELFTEST_TARGET, {"x": 3}))
        assert queue.read_result(tid) is None
        queue.publish_result(tid, (True, {"value": 6}, None, 0.5), "w0")
        ok, result, error, elapsed = queue.read_result(tid)
        assert ok and result == {"value": 6} and error is None
        queue.consume(tid)
        assert queue.pending_tasks() == []
        assert queue.read_result(tid) is None

    def test_torn_result_is_quarantined(self, tmp_path):
        queue = WorkQueue(str(tmp_path))
        queue.ensure()
        tid = queue.publish(Job(SELFTEST_TARGET, {"x": 4}))
        with open(queue.result_path(tid), "w") as handle:
            handle.write('{"ok": true, "resu')  # torn mid-write
        assert queue.read_result(tid) is TORN_RESULT
        assert os.path.exists(queue.result_path(tid) + ".corrupt")
        # The slot reads as "no result yet", so the task re-runs.
        assert queue.read_result(tid) is None
        assert tid in queue.pending_tasks()

    def test_stop_sentinel(self, tmp_path):
        queue = WorkQueue(str(tmp_path))
        assert not queue.stop_requested()
        queue.request_stop()
        assert queue.stop_requested()
        queue.clear_stop()
        assert not queue.stop_requested()

    def test_stale_stop_sentinel_ignored_by_newer_workers(self, tmp_path):
        """A sentinel left by a finished campaign must not kill workers
        pre-started for the next one — regardless of clock skew, since
        detection is by state change, not timestamp comparison."""
        queue = WorkQueue(str(tmp_path))
        queue.request_stop()
        assert queue.stop_requested()  # an unscoped check still sees it
        # Workers born under the stale sentinel serve the queue anyway
        # (a stop binds only the workers alive when it was written).
        queue.publish(Job(SELFTEST_TARGET, {"x": 2}))
        assert run_worker(str(tmp_path), worker_id="fresh", once=True) == 1
        assert queue.stop_stamp() is not None  # left for the coordinator


class TestWorkerLoop:
    def test_once_drains_queue_and_exits(self, tmp_path):
        queue = WorkQueue(str(tmp_path))
        queue.ensure()
        jobs = _jobs(3)
        for job in jobs:
            queue.publish(job)
        evaluated = run_worker(
            str(tmp_path), worker_id="solo", lease_ttl=5.0, once=True
        )
        assert evaluated == 3
        for job in jobs:
            ok, result, error, _ = queue.read_result(task_id(job))
            assert ok and result["value"] == 2 * job.spec["x"]
        # Evaluations are durable: the shared campaign cache has them.
        cache = ResultCache(queue.cache_dir)
        assert all(job.key in cache for job in jobs)

    def test_fresh_stop_sentinel_ends_a_live_worker(self, tmp_path):
        """A stop that *appears* during the worker's lifetime ends it;
        work published afterwards stays unclaimed."""
        queue = WorkQueue(str(tmp_path))
        queue.ensure()
        worker = threading.Thread(
            target=run_worker,
            args=(str(tmp_path),),
            kwargs=dict(worker_id="w", poll=0.01),
            daemon=True,
        )
        worker.start()
        time.sleep(0.1)  # the worker is polling an empty queue
        queue.request_stop()
        worker.join(timeout=10)
        assert not worker.is_alive()
        tid = queue.publish(Job(SELFTEST_TARGET, {"x": 1}))
        assert queue.pending_tasks() == [tid]  # nobody serving anymore

    def test_idle_timeout_expires(self, tmp_path):
        start = time.monotonic()
        assert run_worker(
            str(tmp_path), worker_id="w", poll=0.01, idle_timeout=0.05
        ) == 0
        assert time.monotonic() - start < 5.0

    def test_max_tasks_bounds_the_worker(self, tmp_path):
        queue = WorkQueue(str(tmp_path))
        queue.ensure()
        for job in _jobs(4):
            queue.publish(job)
        assert run_worker(
            str(tmp_path), worker_id="w", once=True, max_tasks=2
        ) == 2
        assert len(queue.pending_tasks()) == 2

    def test_rejects_nonpositive_ttl(self, tmp_path):
        with pytest.raises(ValueError, match="lease_ttl"):
            run_worker(str(tmp_path), lease_ttl=0.0)

    def test_dead_worker_lease_reclaimed_by_survivor(self, tmp_path):
        """A claimed-but-never-finished task re-runs after lease expiry."""
        queue = WorkQueue(str(tmp_path))
        queue.ensure()
        job = Job(SELFTEST_TARGET, {"x": 7})
        tid = queue.publish(job)
        # The "dead" worker claims with a short TTL and then vanishes:
        # no heartbeat, no result, exactly like a SIGKILL mid-task.
        dead = LeaseJournal(queue.lease_path("dead"), "dead")
        dead.claim(tid, 0.3)
        # While the lease lives, the survivor cannot claim the point.
        assert run_worker(
            str(tmp_path), worker_id="survivor", lease_ttl=5.0, once=True
        ) == 0
        assert queue.lease_table().owner(tid, time.time()) == "dead"
        time.sleep(0.35)  # the dead worker's lease expires
        assert run_worker(
            str(tmp_path), worker_id="survivor", lease_ttl=5.0, once=True
        ) == 1
        ok, result, _, _ = queue.read_result(tid)
        assert ok and result["value"] == 14

    def test_claimed_task_served_from_durable_cache(self, tmp_path, monkeypatch):
        """A point another worker already evaluated durably (cache
        written, result file lost to a kill) is served as a file read,
        never re-run through the evaluator."""
        monkeypatch.setenv("REPRO_DSE_SELFTEST_DIR", str(tmp_path / "inv"))
        queue = WorkQueue(str(tmp_path))
        queue.ensure()
        job = Job(SELFTEST_TARGET, {"x": 6, "count": True})
        tid = queue.publish(job)
        store = ResultCache(queue.cache_dir)
        store.put(
            job.key,
            {"target": job.target, "spec": dict(job.spec),
             "result": {"value": 12, "cost": 94, "seed": job.seed},
             "elapsed": 1.5},
        )
        assert run_worker(str(tmp_path), worker_id="w", once=True) == 1
        ok, result, error, elapsed = queue.read_result(tid)
        assert ok and result["value"] == 12 and elapsed == 1.5
        # No invocation marker: the evaluator never ran.
        assert not os.path.exists(str(tmp_path / "inv" / "count-6"))

    def test_lagging_clock_can_claim_a_reopened_task(self, tmp_path):
        """Regression: a reopened task keeps its old ``done`` in the
        fold; a survivor whose clock lags the done author must still
        win a claim immediately (stamped causally past the done), not
        wait out the skew."""
        queue = WorkQueue(str(tmp_path))
        queue.ensure()
        job = Job(SELFTEST_TARGET, {"x": 8})
        tid = queue.publish(job)
        fast = LeaseJournal(queue.lease_path("fast-clock"), "fast-clock")
        fast.append({"event": "done", "task": tid, "t": time.time() + 120.0})
        executor = WorkerPullExecutor(str(tmp_path))
        executor._reopen(tid)
        executor.close()
        queue.clear_stop()  # close() wrote the sentinel; the queue lives on
        assert run_worker(
            str(tmp_path), worker_id="laggard", lease_ttl=5.0, once=True
        ) == 1
        ok, result, _, _ = queue.read_result(tid)
        assert ok and result["value"] == 16

    def test_claim_outruns_a_skewed_reopen_timestamp(self, tmp_path):
        """Regression: the *reopen* may come from a coordinator whose
        clock runs ahead; a claim bumped only past the done would sort
        before that reopen, be cancelled by the done, and stall the
        task for the skew duration."""
        queue = WorkQueue(str(tmp_path))
        queue.ensure()
        job = Job(SELFTEST_TARGET, {"x": 9})
        tid = queue.publish(job)
        worker = LeaseJournal(queue.lease_path("normal"), "normal")
        worker.append({"event": "done", "task": tid, "t": time.time()})
        fast_coord = LeaseJournal(queue.lease_path("coord"), "coord")
        fast_coord.append(
            {"event": "reopen", "task": tid, "t": time.time() + 120.0}
        )
        assert run_worker(
            str(tmp_path), worker_id="laggard2", lease_ttl=5.0, once=True
        ) == 1
        ok, result, _, _ = queue.read_result(tid)
        assert ok and result["value"] == 18

    def test_heartbeat_extends_lease_during_evaluation(self, tmp_path):
        queue = WorkQueue(str(tmp_path))
        queue.ensure()
        journal = LeaseJournal(queue.lease_path("beater"), "beater")
        journal.claim("task-x", 0.3)
        heartbeat = _Heartbeat(journal, "task-x", 0.3)
        try:
            time.sleep(0.5)
        finally:
            heartbeat.stop()
        events = queue.lease_events()
        assert sum(1 for e in events if e["event"] == "heartbeat") >= 1
        # The lease outlived its original TTL thanks to the beats.
        assert queue.lease_table().owner("task-x", time.time() - 0.05) == "beater"


class TestWorkerPullExecutor:
    def test_stall_guard_raises_without_workers(self, tmp_path):
        executor = WorkerPullExecutor(
            str(tmp_path), poll=0.01, timeout=0.15
        )
        runner = CampaignRunner(workers=2, executor=executor)
        with pytest.raises(WorkerStalled, match="still pending"):
            runner.run(_jobs(2))
        executor.close()

    def test_closed_executor_refuses_work(self, tmp_path):
        executor = WorkerPullExecutor(str(tmp_path))
        executor.close()
        with pytest.raises(RuntimeError, match="closed"):
            list(executor.imap(_jobs(1)))

    def test_context_manager_stops_workers_on_exit(self, tmp_path):
        with WorkerPullExecutor(str(tmp_path)) as executor:
            assert not executor.queue.stop_requested()
        assert executor.queue.stop_requested()
        executor.close()  # idempotent

    def test_reopen_outruns_a_skewed_done_timestamp(self, tmp_path):
        """Regression: the coordinator's clock may lag the worker that
        appended ``done`` (cross-host NTP skew); a reopen stamped by
        raw wall-clock would sort *before* the done, be cancelled by
        it, and wedge the task as completed forever."""
        executor = WorkerPullExecutor(str(tmp_path))
        queue = executor.queue
        queue.ensure()
        tid = "feed-0"
        future = time.time() + 120.0  # the worker's clock runs ahead
        worker = LeaseJournal(queue.lease_path("fast-clock"), "fast-clock")
        worker.append({"event": "done", "task": tid, "t": future})
        assert tid in queue.lease_table().completed
        executor._reopen(tid)
        table = queue.lease_table()
        assert tid not in table.completed
        assert table.claim(tid, "anyone", future + 1.0, 30.0)
        executor.close()

    def test_lease_table_folds_only_the_grown_tail(self, tmp_path):
        """The applied-watermark fold: idle polls are pure stats, a
        grown journal contributes only its appended events, and the
        watermark records (byte offset, event count) per journal."""
        queue = WorkQueue(str(tmp_path))
        queue.ensure()
        journal = LeaseJournal(queue.lease_path("w"), "w")
        journal.claim("t-0", 30.0)
        first = queue.lease_table()
        assert first.owner("t-0", time.time()) == "w"
        assert queue.fold_stats["events_folded"] == 1
        assert queue.lease_table() is first  # nothing changed: free fold
        assert queue.fold_stats["events_folded"] == 1  # no re-parse
        journal.done("t-0")
        second = queue.lease_table()
        assert "t-0" in second.completed
        assert queue.fold_stats["events_folded"] == 2  # the tail only
        assert queue.fold_stats["full_refolds"] == 0
        (mark,) = queue.watermarks().values()
        assert mark == (os.path.getsize(queue.lease_path("w")), 2)

    def test_lease_table_refolds_on_out_of_order_tail(self, tmp_path):
        """An event sorting before the applied watermark (cross-journal
        clock skew surfacing between scans) voids the incremental fold;
        the rebuild must agree with the canonical sorted replay."""
        queue = WorkQueue(str(tmp_path))
        queue.ensure()
        fast = LeaseJournal(queue.lease_path("fast"), "fast")
        fast.append({"event": "claim", "task": "t-0", "ttl": 30.0,
                     "t": time.time() + 60.0})
        first = queue.lease_table()
        assert first.owner("t-0", time.time()) == "fast"
        slow = LeaseJournal(queue.lease_path("slow"), "slow")
        slow.claim("t-1", 30.0)  # wall-clock: sorts before fast's claim
        table = queue.lease_table()
        assert queue.fold_stats["full_refolds"] == 1
        reference = LeaseTable.replay(queue.lease_events())
        assert table.leases == reference.leases
        assert table.completed == reference.completed

    def test_lease_table_leaves_a_torn_tail_unconsumed(self, tmp_path):
        """A journal whose last line has no newline yet (writer died or
        is mid-append) folds everything before it; the torn fragment is
        folded later iff its newline ever lands."""
        queue = WorkQueue(str(tmp_path))
        queue.ensure()
        journal = LeaseJournal(queue.lease_path("torn"), "torn")
        journal.claim("t-0", 30.0)
        path = queue.lease_path("torn")
        whole = os.path.getsize(path)
        with open(path, "ab") as handle:
            handle.write(b'{"event":"done","task":"t-0","worker":"torn"')
        table = queue.lease_table()
        assert table.owner("t-0", time.time()) == "torn"
        assert queue.watermarks()[path] == (whole, 1)
        with open(path, "ab") as handle:
            handle.write(b',"t":%f,"seq":2}\n' % (time.time(),))
        assert "t-0" in queue.lease_table().completed

    def test_torn_result_reopened_and_reevaluated(self, tmp_path):
        """A torn outcome file must re-run the point, not wedge the run."""
        executor = WorkerPullExecutor(
            str(tmp_path), lease_ttl=5.0, poll=0.01, timeout=60
        )
        queue = executor.queue
        queue.ensure()
        job = Job(SELFTEST_TARGET, {"x": 5})
        tid = queue.publish(job)
        with open(queue.result_path(tid), "w") as handle:
            handle.write("{torn")
        worker = threading.Thread(
            target=run_worker,
            args=(str(tmp_path),),
            kwargs=dict(worker_id="w", lease_ttl=5.0, poll=0.01),
            daemon=True,
        )
        worker.start()
        try:
            (outcome,) = CampaignRunner(workers=2, executor=executor).run([job])
        finally:
            executor.close()
            worker.join(timeout=30)
        assert outcome.ok and outcome.result["value"] == 10
        assert os.path.exists(queue.result_path(tid) + ".corrupt")

    def test_make_executor_resolution(self, tmp_path):
        assert isinstance(make_executor("serial"), SerialExecutor)
        assert make_executor("pool", workers=2).workers == 2
        pull = make_executor("worker-pull", campaign_dir=str(tmp_path))
        assert isinstance(pull, WorkerPullExecutor)
        passthrough = SerialExecutor()
        assert make_executor(passthrough) is passthrough
        with pytest.raises(ValueError, match="campaign directory"):
            make_executor("worker-pull")
        with pytest.raises(ValueError, match="unknown executor"):
            make_executor("quantum")
        with pytest.raises(ValueError, match="spawn_workers"):
            WorkerPullExecutor(str(tmp_path), spawn_workers=-1)

    def test_make_executor_rejects_inapplicable_options(self, tmp_path):
        with pytest.raises(ValueError, match="does not accept"):
            make_executor("pool", spawn_workers=2)
        with pytest.raises(ValueError, match="does not accept"):
            make_executor("serial", lease_ttl=5.0)
        # Options alongside a ready-made instance would be silently
        # dropped (the caller would believe its lease_ttl applies).
        with pytest.raises(ValueError, match="executor instance"):
            make_executor(SerialExecutor(), lease_ttl=5.0)

    def test_crashing_spawned_workers_fail_fast(self, tmp_path, monkeypatch):
        """Nonzero worker exits abort the run instead of crash-looping;
        clean (idle-timeout) exits respawn instead of aborting."""
        import sys as _sys

        executor = WorkerPullExecutor(
            str(tmp_path), spawn_workers=1, poll=0.01, timeout=10.0
        )
        monkeypatch.setattr(
            executor, "_spawn_command",
            lambda: [_sys.executable, "-c", "import sys; sys.exit(7)"],
        )
        runner = CampaignRunner(workers=2, executor=executor)
        with pytest.raises(WorkerStalled, match="failed"):
            runner.run(_jobs(2))
        executor.close()

    def test_cleanly_exited_spawned_workers_are_respawned(
        self, tmp_path, monkeypatch
    ):
        """Spawned workers that idle-time out (exit 0) keep relaunching
        while the queue is pending (multi-host fleets may be serving
        it); only the stall timeout ends the wait."""
        import sys as _sys

        executor = WorkerPullExecutor(
            str(tmp_path), spawn_workers=1, poll=0.01, timeout=2.5
        )
        spawn_rounds = []
        monkeypatch.setattr(
            executor, "_spawn_command",
            lambda: spawn_rounds.append(1)
            or [_sys.executable, "-c", "raise SystemExit(0)"],
        )
        runner = CampaignRunner(workers=2, executor=executor)
        with pytest.raises(WorkerStalled, match="no result"):
            runner.run(_jobs(1))
        # The initial launch plus >= 1 respawn round (rate-limited 1/s).
        assert len(spawn_rounds) >= 2
        executor.close()

    def test_spawned_workers_get_an_idle_timeout(self, tmp_path):
        """Orphan insurance: a coordinator SIGKILLed without close()
        must not leave spawned workers polling forever."""
        executor = WorkerPullExecutor(str(tmp_path), spawn_workers=2)
        cmd = executor._spawn_command()
        assert "--idle-timeout" in cmd
        assert float(cmd[cmd.index("--idle-timeout") + 1]) > 0


class TestSubprocessWorkers:
    """Real worker processes — the multi-host story on one machine."""

    def test_spawned_workers_run_a_campaign(self, tmp_path):
        executor = WorkerPullExecutor(
            str(tmp_path), spawn_workers=2, lease_ttl=5.0, poll=0.02,
            timeout=120,
        )
        cache = ResultCache(os.path.join(str(tmp_path), "cache"))
        runner = CampaignRunner(workers=2, cache=cache, executor=executor)
        try:
            results = runner.run(_jobs(6))
        finally:
            executor.close()
        assert [r.result["value"] for r in results] == [2 * i for i in range(6)]
        assert len(cache) == 6
        # The workers persisted every record; the coordinator must not
        # have written the same bytes a second time.
        assert cache.writes == 0
        assert all(p.returncode == 0 for p in executor.procs) or not executor.procs

    def test_kill_one_of_two_workers_loses_no_points(self, tmp_path):
        """The acceptance criterion: SIGKILL one worker mid-campaign;
        the survivor reclaims its leased point and every point lands."""
        executor = WorkerPullExecutor(
            str(tmp_path), spawn_workers=2, lease_ttl=2.0, poll=0.02,
            timeout=120,
        )
        cache = ResultCache(os.path.join(str(tmp_path), "cache"))
        runner = CampaignRunner(workers=2, cache=cache, executor=executor)
        jobs = _jobs(8, sleep_s=0.2)
        outcomes = []
        killed = False
        try:
            for outcome in runner.run_iter(jobs):
                outcomes.append(outcome)
                if not killed:
                    # Both workers are mid-task; this one dies hard.
                    os.kill(executor.procs[0].pid, signal.SIGKILL)
                    executor.procs[0].wait()
                    killed = True
        finally:
            executor.close()
        assert killed
        assert len(outcomes) == 8
        assert sorted(o.result["value"] for o in outcomes) == [
            2 * i for i in range(8)
        ]
        assert all(o.ok for o in outcomes)
        # Every result that did land was evaluated by *some* worker and
        # is durable in the shared cache.
        assert len(cache) == 8

    def test_worker_writes_are_valid_results(self, tmp_path):
        """Worker-written cache records match the runner's own schema."""
        executor = WorkerPullExecutor(
            str(tmp_path), spawn_workers=1, lease_ttl=5.0, poll=0.02,
            timeout=120,
        )
        cache = ResultCache(os.path.join(str(tmp_path), "cache"))
        runner = CampaignRunner(workers=2, cache=cache, executor=executor)
        (job,) = _jobs(1)
        try:
            runner.run([job])
        finally:
            executor.close()
        with open(cache.path_for(job.key)) as handle:
            record = json.load(handle)
        assert record["target"] == SELFTEST_TARGET
        assert record["spec"] == {"x": 0}
        assert record["result"]["value"] == 0
