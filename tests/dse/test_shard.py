"""Tests for shard fan-out and crash-safe cache merging."""

import json
import os

import pytest

from repro.dse import (
    ResultCache,
    ShardedResultCache,
    content_key,
    merge_caches,
    shard_index,
)
from repro.dse.shard import iter_records, shard_name


def _keys(count, salt="shard"):
    return [content_key(salt, {"i": i}) for i in range(count)]


class TestShardIndex:
    def test_stable_and_in_range(self):
        for key in _keys(64):
            index = shard_index(key, 16)
            assert 0 <= index < 16
            assert index == shard_index(key, 16)  # pure function of key

    def test_spreads_over_shards(self):
        hit = {shard_index(key, 8) for key in _keys(256)}
        assert hit == set(range(8))

    def test_single_shard_degenerates(self):
        assert all(shard_index(key, 1) == 0 for key in _keys(16))

    def test_rejects_zero_shards(self):
        with pytest.raises(ValueError):
            shard_index(_keys(1)[0], 0)


class TestShardedResultCache:
    def test_roundtrip_and_routing(self, tmp_path):
        cache = ShardedResultCache(str(tmp_path), shards=4)
        keys = _keys(16)
        for position, key in enumerate(keys):
            cache.put(key, {"v": position})
        for position, key in enumerate(keys):
            assert cache.get(key) == {"v": position}
            assert key in cache
            expected = os.path.join(
                str(tmp_path), shard_name(shard_index(key, 4)), key[:2],
                key + ".json",
            )
            assert cache.path_for(key) == expected
            assert os.path.exists(expected)
        assert len(cache) == 16

    def test_counters_aggregate_across_shards(self, tmp_path):
        cache = ShardedResultCache(str(tmp_path), shards=4)
        keys = _keys(8)
        for key in keys:
            assert cache.get(key) is None  # 8 misses
        for key in keys:
            cache.put(key, {"v": 1})
        for key in keys:
            assert cache.get(key) is not None  # 8 hits
        stats = cache.stats()
        assert stats["hits"] == 8 and stats["misses"] == 8
        assert stats["writes"] == 8 and stats["entries"] == 8
        assert stats["hit_rate"] == pytest.approx(0.5)
        assert stats["shards"] == 4

    def test_corrupt_member_quarantined_per_shard(self, tmp_path):
        cache = ShardedResultCache(str(tmp_path), shards=2)
        key = _keys(1)[0]
        cache.put(key, {"v": 1})
        with open(cache.path_for(key), "w") as handle:
            handle.write("{broken")
        assert cache.get(key) is None
        assert cache.corrupt == 1
        assert key not in cache
        cache.put(key, {"v": 2})  # the slot is repairable
        assert cache.get(key) == {"v": 2}

    def test_purge_corrupt_covers_all_shards(self, tmp_path):
        cache = ShardedResultCache(str(tmp_path), shards=4)
        keys = _keys(8)
        for key in keys:
            cache.put(key, {"v": 1})
        for key in keys[:3]:
            with open(cache.path_for(key), "w") as handle:
                handle.write("]")
        removed = cache.purge_corrupt()
        assert sorted(removed) == sorted(keys[:3])
        assert len(cache) == 5

    def test_rejects_zero_shards(self, tmp_path):
        with pytest.raises(ValueError):
            ShardedResultCache(str(tmp_path), shards=0)


class TestMergeCaches:
    def test_merge_plain_and_sharded_sources(self, tmp_path):
        plain = ResultCache(str(tmp_path / "plain"))
        sharded = ShardedResultCache(str(tmp_path / "sharded"), shards=4)
        keys = _keys(12)
        for key in keys[:6]:
            plain.put(key, {"from": "plain"})
        for key in keys[6:]:
            sharded.put(key, {"from": "sharded"})
        dest = ResultCache(str(tmp_path / "dest"))
        counts = merge_caches(dest, [plain, sharded])
        assert counts == {"merged": 12, "skipped": 0, "corrupt": 0}
        assert len(dest) == 12
        for key in keys:
            assert dest.get(key) is not None

    def test_merge_accepts_paths_and_is_idempotent(self, tmp_path):
        source = ResultCache(str(tmp_path / "src"))
        for key in _keys(5):
            source.put(key, {"v": 1})
        dest_root = str(tmp_path / "dest")
        first = merge_caches(dest_root, [str(tmp_path / "src")])
        second = merge_caches(dest_root, [str(tmp_path / "src")])
        assert first["merged"] == 5
        assert second == {"merged": 0, "skipped": 5, "corrupt": 0}
        assert len(ResultCache(dest_root)) == 5

    def test_merge_skips_corrupt_sources(self, tmp_path):
        source = ResultCache(str(tmp_path / "src"))
        keys = _keys(4)
        for key in keys:
            source.put(key, {"v": 1})
        with open(source.path_for(keys[0]), "w") as handle:
            handle.write("{nope")
        dest = ResultCache(str(tmp_path / "dest"))
        counts = merge_caches(dest, [source])
        assert counts["merged"] == 3 and counts["corrupt"] == 1
        assert keys[0] not in dest

    def test_merge_repairs_corrupt_destination_records(self, tmp_path):
        """Last-writer-wins: a torn destination record is overwritten."""
        source = ResultCache(str(tmp_path / "src"))
        key = _keys(1)[0]
        source.put(key, {"v": "good"})
        dest = ResultCache(str(tmp_path / "dest"))
        dest.put(key, {"v": "doomed"})
        with open(dest.path_for(key), "w") as handle:
            handle.write("{torn")
        counts = merge_caches(dest, [source])
        assert counts["merged"] == 1
        assert dest.get(key) == {"v": "good"}

    def test_merge_into_sharded_destination_routes_keys(self, tmp_path):
        source = ResultCache(str(tmp_path / "src"))
        keys = _keys(8)
        for key in keys:
            source.put(key, {"v": 1})
        dest = ShardedResultCache(str(tmp_path / "dest"), shards=4)
        merge_caches(dest, [source])
        for key in keys:
            assert os.path.exists(dest.path_for(key))
        assert len(dest) == 8

    def test_missing_source_is_a_noop(self, tmp_path):
        dest = ResultCache(str(tmp_path / "dest"))
        assert merge_caches(dest, [str(tmp_path / "ghost")]) == {
            "merged": 0, "skipped": 0, "corrupt": 0,
        }

    def test_self_merge_is_a_noop(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        for key in _keys(3):
            cache.put(key, {"v": 1})
        counts = merge_caches(cache, [cache])
        assert counts["merged"] == 0 and counts["skipped"] == 3
        assert len(cache) == 3

    def test_iter_records_skips_droppings(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        key = _keys(1)[0]
        cache.put(key, {"v": 1})
        shard_dir = os.path.dirname(cache.path_for(key))
        open(os.path.join(shard_dir, "stale.tmp"), "w").close()
        open(os.path.join(shard_dir, "old.json.corrupt"), "w").close()
        records = list(iter_records(str(tmp_path)))
        assert records == [(key, cache.path_for(key))]
        with open(records[0][1]) as handle:
            assert json.load(handle) == {"v": 1}
