"""Tests for streaming execution, progress reporting and pool sizing."""

import time

import pytest

from repro.dse import (
    WORKERS_ENV,
    CampaignRunner,
    Job,
    Progress,
    ResultCache,
    default_workers,
    register_target,
)


def _echo(spec, seed):
    return {"value": spec["x"] * 2}


def _fragile(spec, seed):
    if spec["x"] == 2:
        raise ValueError("point 2 is broken")
    return {"value": spec["x"]}


@pytest.fixture(autouse=True)
def _targets():
    register_target("stream-echo", _echo)
    register_target("stream-fragile", _fragile)


class TestRunIter:
    def test_serial_evaluation_is_lazy(self):
        """run_iter evaluates one point per pull, not the batch up front."""
        calls = []

        def counting(spec, seed):
            calls.append(spec["x"])
            return {"value": spec["x"]}

        register_target("stream-count", counting)
        jobs = [Job("stream-count", {"x": i}) for i in range(4)]
        iterator = CampaignRunner(workers=1).run_iter(jobs)
        first = next(iterator)
        assert first.ok
        assert len(calls) == 1
        next(iterator)
        assert len(calls) == 2
        rest = list(iterator)
        assert len(calls) == 4
        assert len(rest) == 2

    def test_cache_hits_stream_first(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        jobs = [Job("stream-echo", {"x": i}) for i in range(4)]
        runner = CampaignRunner(workers=1, cache=cache)
        runner.run(jobs[:2])  # warm two of four
        order = list(runner.run_iter(jobs))
        assert [r.from_cache for r in order] == [True, True, False, False]

    def test_yields_one_result_per_duplicate(self):
        jobs = [Job("stream-echo", {"x": 3})] * 3
        results = list(CampaignRunner(workers=1).run_iter(jobs))
        assert len(results) == 3
        assert all(r.result["value"] == 6 for r in results)

    def test_parallel_matches_serial(self):
        jobs = [Job("stream-echo", {"x": i}) for i in range(8)]
        serial = CampaignRunner(workers=1).run(jobs)
        parallel = CampaignRunner(workers=2, chunksize=1).run(jobs)
        assert [r.result for r in serial] == [r.result for r in parallel]

    def test_parallel_run_iter_completes_all(self):
        jobs = [Job("stream-echo", {"x": i}) for i in range(8)]
        results = list(CampaignRunner(workers=2, chunksize=1).run_iter(jobs))
        assert sorted(r.result["value"] for r in results) == [
            0, 2, 4, 6, 8, 10, 12, 14,
        ]

    def test_abandoning_iterator_is_clean(self):
        jobs = [Job("stream-echo", {"x": i}) for i in range(6)]
        iterator = CampaignRunner(workers=2, chunksize=1).run_iter(jobs)
        next(iterator)
        iterator.close()  # must tear the pool down without hanging


class TestProgress:
    def test_event_stream_counts(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        runner = CampaignRunner(workers=1, cache=cache)
        jobs = [Job("stream-fragile", {"x": i}) for i in range(4)]
        runner.run(jobs[:1])  # one cache hit for the real run

        events = []
        runner.run(jobs, progress=events.append)
        assert [e.done for e in events] == [1, 2, 3, 4]
        assert events[-1].total == 4
        assert events[-1].cached == 1
        assert events[-1].failed == 1
        assert events[-1].remaining == 0
        assert events[-1].eta == 0.0

    def test_eta_none_until_first_evaluation(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        runner = CampaignRunner(workers=1, cache=cache)
        jobs = [Job("stream-echo", {"x": i}) for i in range(3)]
        runner.run(jobs[:2])
        events = []
        runner.run(jobs, progress=events.append)
        # First two events are pure cache hits: no evaluation rate yet.
        assert events[0].eta is None
        assert events[1].eta is None
        assert events[2].eta == 0.0

    def test_eta_extrapolates_from_windowed_rate(self):
        """Regression: ETA is remaining work over the *measured
        evaluation rate*, not a rescaling of total wall-clock."""
        probe = Progress(total=10, done=4, elapsed=100.0, rate=2.0)
        assert probe.eta == 3.0  # 6 remaining / 2 per second
        assert Progress(total=10, done=4, elapsed=100.0).eta is None
        assert Progress(total=4, done=4, elapsed=100.0).eta == 0.0

    def test_eta_ignores_cache_scan_stall(self, tmp_path):
        """Regression: wall-clock burned streaming cached hits to a
        slow consumer inflated the historic ``elapsed / evaluated *
        remaining`` extrapolation; the windowed rate starts at
        dispatch, so a mostly-warm resume reports the true remaining
        time, not a multiple of it."""

        def _sleepy(spec, seed):
            time.sleep(0.05)
            return {"value": spec["x"]}

        register_target("stream-sleepy", _sleepy)
        cache = ResultCache(str(tmp_path))
        jobs = [Job("stream-sleepy", {"x": i}) for i in range(16)]
        runner = CampaignRunner(workers=4, chunksize=1, cache=cache)
        runner.run(jobs[:8])  # warm the first half

        snapshots = []

        def consume(progress):
            snapshots.append(progress)
            if progress.evaluated == 0:
                time.sleep(0.25)  # slow consumer on the cached prefix

        runner.run(jobs, progress=consume)
        probe = next(p for p in snapshots if p.evaluated == 4)
        assert probe.remaining == 4
        # ~2s of cached-prefix stall sits in elapsed; the 4 remaining
        # points cost well under a second of real evaluation.
        historic = probe.elapsed / probe.evaluated * probe.remaining
        assert historic >= 2.0
        assert probe.eta is not None
        assert probe.eta <= 1.5
        assert historic > 2 * probe.eta

    def test_snapshots_are_independent(self):
        events = []
        jobs = [Job("stream-echo", {"x": i}) for i in range(3)]
        CampaignRunner(workers=1).run(jobs, progress=events.append)
        assert [e.done for e in events] == [1, 2, 3]  # not three aliases


class TestWorkersEnv:
    def test_env_override(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "3")
        assert default_workers() == 3
        assert CampaignRunner().workers == 3

    def test_explicit_workers_beats_env(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "3")
        assert CampaignRunner(workers=2).workers == 2

    def test_env_must_be_positive_int(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "zero")
        with pytest.raises(ValueError, match=WORKERS_ENV):
            CampaignRunner()
        monkeypatch.setenv(WORKERS_ENV, "0")
        with pytest.raises(ValueError, match=WORKERS_ENV):
            CampaignRunner()

    def test_unset_env_uses_cpu_count(self, monkeypatch):
        monkeypatch.delenv(WORKERS_ENV, raising=False)
        assert default_workers() >= 1
