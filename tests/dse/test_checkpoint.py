"""Tests for campaign journals and checkpointed (resumable) execution."""

import json
import os
import time

import pytest

from repro.dse import (
    CampaignRunner,
    CampaignState,
    Job,
    JobResult,
    ResultCache,
    campaign_key,
    read_events,
    register_target,
    run_checkpointed,
)

KEY = campaign_key({"kind": "test", "axes": [["x", [0, 1, 2, 3, 4, 5]]]})


def _echo(spec, seed):
    return {"value": spec["x"] * 10}


def _fragile(spec, seed):
    if spec["x"] == 1:
        raise ValueError("point 1 is broken")
    return {"value": spec["x"]}


@pytest.fixture(autouse=True)
def _targets():
    register_target("ckpt-echo", _echo)
    register_target("ckpt-fragile", _fragile)


class Killed(Exception):
    """Stands in for SIGKILL: aborts the campaign mid-stream."""


class TestCampaignState:
    def test_roundtrip(self, tmp_path):
        path = str(tmp_path / "checkpoint.json")
        state = CampaignState.open(path, KEY, total=6, meta={"kind": "test"})
        job = Job("ckpt-echo", {"x": 0})
        (outcome,) = CampaignRunner(workers=1).run([job])
        state.record(outcome)
        loaded = CampaignState.load(path)
        assert loaded.key == KEY
        assert loaded.total == 6
        assert loaded.done == 1
        assert loaded.failed == 0
        assert loaded.entry(job.key) == {
            "ok": True,
            "error": None,
            "elapsed": outcome.elapsed,
        }
        assert loaded.meta == {"kind": "test"}

    def test_status_payload(self, tmp_path):
        path = str(tmp_path / "checkpoint.json")
        state = CampaignState.open(path, KEY, total=4)
        status = state.status()
        assert status["total"] == 4
        assert status["done"] == 0
        assert status["remaining"] == 4
        assert status["campaign_key"] == KEY

    def test_resume_rejects_foreign_journal(self, tmp_path):
        path = str(tmp_path / "checkpoint.json")
        CampaignState.open(path, KEY, total=4)
        other = campaign_key({"kind": "test", "axes": [["x", [9]]]})
        with pytest.raises(ValueError, match="different campaign"):
            CampaignState.open(path, other, total=4, resume=True)

    def test_fresh_open_overwrites(self, tmp_path):
        path = str(tmp_path / "checkpoint.json")
        state = CampaignState.open(path, KEY, total=4)
        job = Job("ckpt-echo", {"x": 0})
        (outcome,) = CampaignRunner(workers=1).run([job])
        state.record(outcome)
        fresh = CampaignState.open(path, KEY, total=4, resume=False)
        assert fresh.done == 0
        assert CampaignState.load(path).done == 0

    def test_load_corrupt_raises(self, tmp_path):
        path = tmp_path / "checkpoint.json"
        path.write_text("{ not json")
        with pytest.raises(ValueError, match="corrupt"):
            CampaignState.load(str(path))

    def test_load_missing_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            CampaignState.load(str(tmp_path / "nope.json"))

    def test_journal_is_valid_jsonl_after_every_record(self, tmp_path):
        """Every append leaves one parseable JSON object per line."""
        path = str(tmp_path / "journal.jsonl")
        state = CampaignState.open(path, KEY, total=3)
        jobs = [Job("ckpt-echo", {"x": i}) for i in range(3)]
        for count, outcome in enumerate(CampaignRunner(workers=1).run(jobs)):
            state.record(outcome)
            state.sync()
            with open(path) as handle:
                events = [json.loads(line) for line in handle if line.strip()]
            assert events[0]["event"] == "begin"
            assert events[0]["campaign_key"] == KEY
            assert sum(1 for e in events if e["event"] == "done") == count + 1
            loaded = CampaignState.load(path)
            assert loaded.done == count + 1

    def test_record_appends_one_line_per_point(self, tmp_path):
        """O(1) journal I/O: history is never rewritten on record()."""
        path = str(tmp_path / "journal.jsonl")
        state = CampaignState.open(path, KEY, total=4)
        jobs = [Job("ckpt-echo", {"x": i}) for i in range(4)]
        sizes = []
        for outcome in CampaignRunner(workers=1).run(jobs):
            state.record(outcome)
            state.sync()
            sizes.append(os.path.getsize(path))
        growth = [b - a for a, b in zip(sizes, sizes[1:])]
        # Each completion appends one bounded line: growth is flat, not
        # proportional to the number of points already journaled.
        assert max(growth) <= 2 * min(growth)

    def test_save_failure_leaves_no_tmp_and_keeps_journal(self, tmp_path):
        """Regression: an unserialisable snapshot payload must neither
        litter ``*.tmp`` files nor damage the journal on disk."""
        path = str(tmp_path / "journal.jsonl")
        state = CampaignState.open(path, KEY, total=1, meta={"kind": "test"})
        job = Job("ckpt-echo", {"x": 0})
        (outcome,) = CampaignRunner(workers=1).run([job])
        state.record(outcome)
        state.meta["poison"] = object()  # not JSON-serialisable
        with pytest.raises(TypeError):
            state.save()
        assert list(tmp_path.glob("*.tmp")) == []
        loaded = CampaignState.load(path)
        assert loaded.done == 1
        assert loaded.entry(job.key)["ok"] is True

    def test_atomic_write_cleans_tmp_when_replace_fails(
        self, tmp_path, monkeypatch
    ):
        """The tmp file is removed in a finally even when the final
        rename blows up mid-write."""
        from repro.dse.journal import atomic_write_text

        def boom(src, dst):
            raise OSError("disk full")

        monkeypatch.setattr(os, "replace", boom)
        with pytest.raises(OSError, match="disk full"):
            atomic_write_text(str(tmp_path / "out.json"), "{}")
        assert list(tmp_path.glob("*.tmp")) == []


class TestStatusAccounting:
    def test_quarantined_points_leave_remaining(self, tmp_path):
        """Regression: a quarantined point counted as both done and
        remaining — ``done + remaining + quarantined`` summed past
        ``total``.  The buckets are disjoint now."""
        path = str(tmp_path / "journal.jsonl")
        state = CampaignState.open(path, KEY, total=4)
        for outcome in CampaignRunner(workers=1).run(
            [Job("ckpt-echo", {"x": i}) for i in range(2)]
        ):
            state.record(outcome)
        bad = Job("ckpt-fragile", {"x": 1})
        (failure,) = CampaignRunner(workers=1).run([bad])
        state.record(failure)
        state.quarantine(bad.key, 3)
        status = state.status()
        assert status["done"] == 2
        assert status["quarantined"] == 1
        assert status["remaining"] == 1  # the one point never submitted
        assert (
            status["done"] + status["remaining"] + status["quarantined"]
            == status["total"]
        )
        # failed/timeouts stay raw diagnostics over every completion:
        # the quarantined point's final failure is still visible.
        assert status["failed"] == 1

    def test_release_returns_point_to_remaining(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        state = CampaignState.open(path, KEY, total=2)
        bad = Job("ckpt-fragile", {"x": 1})
        (failure,) = CampaignRunner(workers=1).run([bad])
        state.record(failure)
        state.quarantine(bad.key, 3)
        assert state.status()["remaining"] == 1
        state.release()
        status = state.status()
        assert status["quarantined"] == 0
        assert status["remaining"] == 2
        assert status["failed"] == 0  # the failed entry was cleared

    def test_accounting_identity_survives_reload(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        state = CampaignState.open(path, KEY, total=3)
        bad = Job("ckpt-fragile", {"x": 1})
        (failure,) = CampaignRunner(workers=1).run([bad])
        state.record(failure)
        state.quarantine(bad.key, 3)
        state.close()
        status = CampaignState.load(path).status()
        assert status["done"] == 0
        assert status["quarantined"] == 1
        assert status["remaining"] == 2
        assert (
            status["done"] + status["remaining"] + status["quarantined"]
            == status["total"]
        )


class TestMonotoneStamps:
    def test_append_clamps_backward_clock(self, tmp_path):
        """Regression: a backwards wall-clock step (NTP) journaled a
        decreasing ``t``; appends clamp to the high-water mark."""
        path = str(tmp_path / "journal.jsonl")
        state = CampaignState.open(path, KEY, total=2)
        state._append({"event": "started", "key": "k1", "t": 100.0})
        state._append({"event": "started", "key": "k2", "t": 50.0})
        state.close()
        events, torn = read_events(path)
        assert torn == 0
        assert [e["t"] for e in events[1:]] == [100.0, 100.0]

    def test_reload_seeds_high_water_mark(self, tmp_path):
        """The clamp spans process restarts: a journal whose stamps run
        ahead of this host's clock never regresses on resume."""
        path = str(tmp_path / "journal.jsonl")
        state = CampaignState.open(path, KEY, total=2)
        future = time.time() + 3600.0
        state._append({"event": "started", "key": "k1", "t": future})
        state.close()
        reloaded = CampaignState.load(path)
        job = Job("ckpt-echo", {"x": 0})
        (outcome,) = CampaignRunner(workers=1).run([job])
        reloaded.record(outcome)  # wall-clock is an hour behind
        reloaded.close()
        events, _ = read_events(path)
        stamps = [e["t"] for e in events[1:]]
        assert stamps == sorted(stamps)
        assert events[-1]["t"] >= future

    def test_cached_completion_journals_original_elapsed(self, tmp_path):
        """Regression: cache-served completions journaled no elapsed,
        so analytics mistook a hit for a zero-latency evaluation."""
        path = str(tmp_path / "journal.jsonl")
        state = CampaignState.open(path, KEY, total=1)
        job = Job("ckpt-echo", {"x": 0})
        state.record(JobResult(
            job=job, ok=True, result={"value": 0},
            elapsed=0.125, from_cache=True,
        ))
        state.close()
        events, _ = read_events(path)
        cached = [e for e in events if e["event"] == "cached"]
        assert cached and cached[0]["elapsed"] == 0.125


class TestRunCheckpointed:
    def _runner(self, tmp_path):
        return CampaignRunner(
            workers=1, cache=ResultCache(str(tmp_path / "cache"))
        )

    def test_kill_then_resume_zero_reevaluation(self, tmp_path):
        """The acceptance criterion, on cheap jobs: kill after N of M
        points, resume, finish with the N points untouched and results
        identical to an uninterrupted run."""
        calls = []

        def counting(spec, seed):
            calls.append(spec["x"])
            return {"value": spec["x"]}

        register_target("ckpt-count", counting)
        jobs = [Job("ckpt-count", {"x": i}) for i in range(6)]
        path = str(tmp_path / "checkpoint.json")

        # Uninterrupted reference (separate cache, same evaluator).
        reference = CampaignRunner(
            workers=1, cache=ResultCache(str(tmp_path / "ref-cache"))
        ).run(jobs)
        assert len(calls) == 6

        def bomb(event):
            if event.done == 3:
                raise Killed()

        del calls[:]
        runner = self._runner(tmp_path)
        state = CampaignState.open(path, KEY, total=6)
        with pytest.raises(Killed):
            run_checkpointed(jobs, runner, state, progress=bomb)
        assert len(calls) == 3  # killed after the 3rd evaluation

        journal = CampaignState.load(path)
        finished = set(journal.completed)
        assert 1 <= journal.done <= 3

        resumed_state = CampaignState.open(path, KEY, total=6, resume=True)
        results = run_checkpointed(jobs, runner, resumed_state, progress=None)

        # Zero re-evaluation: every point ran exactly once across both
        # attempts, and the journaled points came back as cache hits.
        assert sorted(calls) == list(range(6))
        for job, outcome in zip(jobs, results):
            if job.key in finished:
                assert outcome.from_cache
        # Byte-identical to the uninterrupted run.
        assert [r.result for r in results] == [r.result for r in reference]
        assert [r.ok for r in results] == [r.ok for r in reference]
        assert CampaignState.load(path).done == 6

    def test_failed_points_replay_without_retry(self, tmp_path):
        jobs = [Job("ckpt-fragile", {"x": i}) for i in range(3)]
        path = str(tmp_path / "checkpoint.json")
        runner = self._runner(tmp_path)
        state = CampaignState.open(path, KEY, total=3)
        first = run_checkpointed(jobs, runner, state)
        assert [r.ok for r in first] == [True, False, True]

        calls = []

        def healed(spec, seed):
            calls.append(spec["x"])
            return {"value": spec["x"]}

        register_target("ckpt-fragile", healed)
        resumed = CampaignState.open(path, KEY, total=3, resume=True)
        replayed = run_checkpointed(jobs, runner, resumed)
        assert calls == []  # journaled failure replayed, evaluator untouched
        assert not replayed[1].ok
        assert "point 1 is broken" in replayed[1].error
        assert replayed[1].from_cache

        retried = run_checkpointed(jobs, runner, resumed, retry_failed=True)
        assert calls == [1]
        assert retried[1].ok
        register_target("ckpt-fragile", _fragile)

    def test_duplicate_jobs_supported(self, tmp_path):
        jobs = [Job("ckpt-echo", {"x": 7})] * 3
        state = CampaignState.open(str(tmp_path / "c.json"), KEY, total=3)
        results = run_checkpointed(jobs, self._runner(tmp_path), state)
        assert [r.result["value"] for r in results] == [70, 70, 70]
        assert state.done == 1  # one key, journaled once

    def test_progress_reports_submitted_points(self, tmp_path):
        events = []
        jobs = [Job("ckpt-echo", {"x": i}) for i in range(4)]
        state = CampaignState.open(str(tmp_path / "c.json"), KEY, total=4)
        run_checkpointed(
            jobs, self._runner(tmp_path), state, progress=events.append
        )
        assert [e.done for e in events] == [1, 2, 3, 4]
        assert events[-1].total == 4
        assert events[-1].failed == 0

    def test_journal_ok_with_missing_cache_reevaluates(self, tmp_path):
        """A journaled-ok point whose cache entry vanished re-runs."""
        calls = []

        def counting(spec, seed):
            calls.append(spec["x"])
            return {"value": spec["x"]}

        register_target("ckpt-count2", counting)
        jobs = [Job("ckpt-count2", {"x": i}) for i in range(2)]
        path = str(tmp_path / "checkpoint.json")
        runner = self._runner(tmp_path)
        state = CampaignState.open(path, KEY, total=2)
        run_checkpointed(jobs, runner, state)
        assert len(calls) == 2

        # Wipe the cache but keep the journal.
        import shutil

        shutil.rmtree(str(tmp_path / "cache"))
        resumed = CampaignState.open(path, KEY, total=2, resume=True)
        results = run_checkpointed(jobs, runner, resumed)
        assert len(calls) == 4  # both re-evaluated — correctness over thrift
        assert all(r.ok for r in results)
