"""Fast-tier coverage of the campaign entry points.

The heavyweight end-to-end campaigns live behind the ``slow`` marker in
test_runner_campaign.py / test_resume_campaign.py; these tests exercise
the same entry-point plumbing at one-to-two-point scale with reduced
Monte-Carlo effort so the tier-1 loop (and its coverage gate) sees the
real code paths.
"""

import pytest

from repro.dse import (
    CampaignRunner,
    Job,
    ParameterSpace,
    RetryPolicy,
    explore_memory,
    memory_point_spec,
)
from repro.dse.campaign import sweep_points

TINY = dict(num_words=100, error_population=5_000)


def _space():
    return ParameterSpace().add("subarray_rows", [256])


class TestExploreMemoryFast:
    def test_grid_campaign_with_cache(self, tmp_path):
        cold = explore_memory(_space(), cache_dir=str(tmp_path), **TINY)
        assert len(cold.outcomes) == 1
        assert cold.cache_hits == 0
        assert len(cold.records()) == 1
        assert cold.errors() == []
        assert cold.infeasible() == 0
        assert len(cold.pareto()) == 1
        warm = explore_memory(_space(), cache_dir=str(tmp_path), **TINY)
        assert warm.cache_hits == 1
        assert warm.records() == cold.records()
        assert warm.cache_stats["hits"] == 1

    def test_adaptive_sampler_single_round(self, tmp_path):
        space = ParameterSpace().add("subarray_rows", [128, 256])
        result = explore_memory(
            space, sampler="adaptive",
            sampler_options=dict(batch=2, rounds=1, seed=0),
            cache_dir=str(tmp_path), **TINY,
        )
        assert result.adaptive is not None
        assert 1 <= len(result.jobs) <= 2
        assert result.adaptive.evaluations == len(result.jobs)

    def test_unknown_sampler_rejected(self):
        with pytest.raises(ValueError, match="unknown sampler"):
            explore_memory(_space(), sampler="bayesian", **TINY)

    def test_lhs_requires_samples(self):
        with pytest.raises(ValueError, match="requires samples"):
            explore_memory(_space(), sampler="lhs", **TINY)

    def test_retry_policy_threads_through(self, tmp_path):
        result = explore_memory(
            _space(), cache_dir=str(tmp_path),
            retry=RetryPolicy(max_attempts=2), **TINY,
        )
        assert all(o.ok for o in result.outcomes)
        assert all(o.attempts == 1 for o in result.outcomes)


class TestSweepCompatibilityPath:
    def test_memory_point_spec_and_sweep_points(self):
        from repro.nvsim.config import PAPER_ARRAY
        from repro.pdk.kit import ProcessDesignKit
        from repro.vaet.explorer import DesignConstraints, DesignSpaceExplorer

        explorer = DesignSpaceExplorer(
            ProcessDesignKit.for_node(45), PAPER_ARRAY,
            DesignConstraints(), num_words=100, error_population=5_000,
        )
        spec = memory_point_spec(explorer, PAPER_ARRAY)
        assert spec["seed"] == 2018
        assert spec["node_nm"] == 45
        job = Job("vaet-memory", spec)
        points = sweep_points([job], CampaignRunner(workers=1))
        assert len(points) == 1
        assert points[0].config.to_dict() == PAPER_ARRAY.to_dict()
