"""End-to-end resumable campaigns over the real evaluators.

The fast checkpoint mechanics live in test_checkpoint.py; these suites
pay for real VAET-STT / MAGPIE evaluations, so they carry the ``slow``
marker.
"""

import pytest

from repro.dse import (
    CampaignState,
    ParameterSpace,
    run_memory_campaign,
    run_system_campaign,
)
from repro.dse.checkpoint import JOURNAL_NAME
from repro.magpie.scenarios import Scenario

SETTINGS = dict(num_words=200, error_population=10_000)


def _space():
    return ParameterSpace().add("subarray_rows", [128, 256]).add(
        "wer_target", [1e-9, 1e-12]
    )


class Killed(Exception):
    """Stands in for a SIGKILL mid-campaign."""


@pytest.mark.slow
class TestMemoryCampaignResume:
    def test_kill_resume_identical_to_uninterrupted(self, tmp_path):
        space = _space()
        reference = run_memory_campaign(
            space, str(tmp_path / "ref"), **SETTINGS
        )
        assert len(reference.outcomes) == 4

        def bomb(event):
            if event.done == 2:
                raise Killed()

        campaign_dir = str(tmp_path / "killed")
        with pytest.raises(Killed):
            run_memory_campaign(space, campaign_dir, progress=bomb, **SETTINGS)

        journal = CampaignState.load(tmp_path / "killed" / JOURNAL_NAME)
        finished = set(journal.completed)
        assert 1 <= journal.done < 4

        resumed = run_memory_campaign(
            space, campaign_dir, resume=True, **SETTINGS
        )
        # Zero re-evaluation: every point that finished before the kill
        # comes back as a cache hit.
        for job, outcome in zip(resumed.jobs, resumed.outcomes):
            if job.key in finished:
                assert outcome.from_cache
        assert resumed.cache_stats["hits"] >= len(finished)
        # And the final records are identical to the uninterrupted run.
        assert resumed.records() == reference.records()
        assert CampaignState.load(tmp_path / "killed" / JOURNAL_NAME).done == 4

    def test_resume_completed_campaign_is_pure_cache(self, tmp_path):
        space = _space()
        campaign_dir = str(tmp_path / "camp")
        first = run_memory_campaign(space, campaign_dir, **SETTINGS)
        again = run_memory_campaign(space, campaign_dir, resume=True, **SETTINGS)
        assert all(o.from_cache for o in again.outcomes)
        assert again.records() == first.records()

    def test_resume_rejects_changed_settings(self, tmp_path):
        space = _space()
        campaign_dir = str(tmp_path / "camp")
        run_memory_campaign(space, campaign_dir, **SETTINGS)
        with pytest.raises(ValueError, match="different campaign"):
            run_memory_campaign(
                space, campaign_dir, resume=True,
                num_words=300, error_population=10_000,
            )

    def test_adaptive_campaign_resumes_from_cache(self, tmp_path):
        space = ParameterSpace().add(
            "subarray_rows", [128, 256, 512]
        ).add("wer_target", [1e-9, 1e-12, 1e-15])
        campaign_dir = str(tmp_path / "adaptive")
        options = dict(batch=4, rounds=2, seed=0)
        first = run_memory_campaign(
            space, campaign_dir, sampler="adaptive",
            sampler_options=options, **SETTINGS,
        )
        assert first.adaptive is not None
        assert first.adaptive.evaluations == len(first.jobs)
        again = run_memory_campaign(
            space, campaign_dir, resume=True, sampler="adaptive",
            sampler_options=options, **SETTINGS,
        )
        # Deterministic zoom: the replay walks the same points, all hits.
        assert [j.key for j in again.jobs] == [j.key for j in first.jobs]
        assert all(o.from_cache for o in again.outcomes)
        assert again.records() == first.records()


@pytest.mark.slow
class TestSystemCampaignResume:
    def test_kill_resume_matches_uninterrupted(self, tmp_path):
        kwargs = dict(
            workloads=["bodytrack"],
            scenarios=[Scenario.FULL_SRAM, Scenario.FULL_L2_STT],
        )
        reference = run_system_campaign(str(tmp_path / "ref"), **kwargs)
        assert len(reference.results) == 2

        def bomb(event):
            if event.done == 1:
                raise Killed()

        campaign_dir = str(tmp_path / "killed")
        with pytest.raises(Killed):
            run_system_campaign(campaign_dir, progress=bomb, **kwargs)
        assert CampaignState.load(tmp_path / "killed" / JOURNAL_NAME).done >= 0

        resumed = run_system_campaign(campaign_dir, resume=True, **kwargs)
        assert sorted(map(str, resumed.records())) == sorted(
            map(str, reference.records())
        )
        assert resumed.cache_stats["hits"] >= 1


@pytest.mark.slow
class TestAdaptiveExploreMemory:
    def test_adaptive_explores_fewer_points_than_grid(self, tmp_path):
        space = ParameterSpace().add(
            "subarray_rows", [128, 256, 512]
        ).add("word_bits", [128, 256]).add("wer_target", [1e-9, 1e-12])
        from repro.dse import explore_memory

        result = explore_memory(
            space, sampler="adaptive",
            sampler_options=dict(batch=4, rounds=2, seed=0),
            cache_dir=str(tmp_path), **SETTINGS,
        )
        assert result.adaptive is not None
        assert 0 < len(result.jobs) < space.size
        assert len(result.records()) > 0
        # The zoom's winner is the best EDP point it evaluated.
        best = min(row["edp_proxy"] for row in result.records())
        assert result.adaptive.best_score == pytest.approx(best)
