"""SurrogateSampler: determinism, budget efficiency, campaign replay.

The fast suites drive the sampler on an analytic toy objective; the
``slow`` suites pay for real VAET-STT evaluations through
``explore_memory`` / ``run_memory_campaign`` to pin the kill/resume
and executor-replay guarantees end to end.
"""

import math

import pytest

from repro.dse import (
    CampaignState,
    ParameterSpace,
    SurrogateSampler,
    evaluations_to_target,
    explore_memory,
    explore_system,
    run_memory_campaign,
)
from repro.dse.adaptive import AdaptiveRound, AdaptiveTrace, point_key
from repro.dse.checkpoint import JOURNAL_NAME

TINY = dict(num_words=100, error_population=5_000)

#: Toy objective: a discrete bowl with its optimum off-centre, so grid
#: symmetry never gifts the optimum to a stratified draw.
BOWL_OPTIMUM = (11, 3)


def _bowl_score(point):
    dx = point["x"] - BOWL_OPTIMUM[0]
    dy = point["y"] - BOWL_OPTIMUM[1]
    return float(dx * dx + dy * dy)


def _bowl_evaluate(points):
    return [_bowl_score(point) for point in points]


def _bowl_space(side=16):
    return ParameterSpace().add("x", list(range(side))).add(
        "y", list(range(side))
    )


def _memory_space():
    return ParameterSpace().add("subarray_rows", [128, 256, 512]).add(
        "wer_target", [1e-9, 1e-12]
    )


class TestValidation:
    @pytest.mark.parametrize(
        "options",
        [
            dict(batch=0),
            dict(rounds=0),
            dict(gamma=0.0),
            dict(gamma=1.0),
            dict(candidates=0),
            dict(smoothing=0.0),
            dict(init_rounds=0),
        ],
    )
    def test_bad_options_rejected(self, options):
        with pytest.raises(ValueError):
            SurrogateSampler(_bowl_space(), **options)


class TestDeterminism:
    def test_same_seed_identical_trace(self):
        traces = [
            SurrogateSampler(
                _bowl_space(), batch=6, rounds=5, candidates=128, seed=7
            ).run(_bowl_evaluate)
            for _ in range(2)
        ]
        first, second = traces
        assert len(first.rounds) == len(second.rounds)
        for a, b in zip(first.rounds, second.rounds):
            assert a.points == b.points
            assert a.scores == b.scores
        assert first.best_point == second.best_point
        assert first.best_score == second.best_score

    def test_propose_is_pure_in_its_inputs(self):
        sampler = SurrogateSampler(
            _bowl_space(), batch=4, rounds=4, candidates=64, seed=3
        )
        history = [({"x": x, "y": y}, _bowl_score({"x": x, "y": y}))
                   for x, y in [(0, 0), (11, 3), (15, 15), (10, 4)]]
        seen = {point_key(point) for point, _ in history}
        first = sampler.propose(2, list(history), set(seen))
        second = sampler.propose(2, list(history), set(seen))
        assert first == second

    def test_never_proposes_a_point_twice(self):
        sampler = SurrogateSampler(
            _bowl_space(8), batch=8, rounds=8, candidates=64, seed=1
        )
        trace = sampler.run(_bowl_evaluate)
        keys = [
            point_key(point)
            for round_record in trace.rounds
            for point in round_record.points
        ]
        assert len(keys) == len(set(keys))
        assert trace.evaluations == len(keys)

    def test_small_space_fully_enumerated_then_stops(self):
        space = ParameterSpace().add("x", [0, 1]).add("y", [0, 1])
        sampler = SurrogateSampler(space, batch=3, rounds=10, seed=0)
        trace = sampler.run(_bowl_evaluate)
        assert trace.evaluations == space.size
        assert trace.best_score == _bowl_score({"x": 1, "y": 1})


class TestBudgetEfficiency:
    """The tentpole claim: the model beats blind LHS to a near-optimum.

    Both samplers get the identical budget (64 evaluations of a
    256-point bowl); the LHS baseline is exactly what
    ``sampler="lhs"`` runs — one stratified ``space.sample`` draw,
    scored in order.  Seeds are pinned, every quantity below is
    deterministic, and the margin held on every seed when chosen.
    """

    SEEDS = (0, 1, 2, 3, 4, 5)
    BUDGET = 64
    TARGET = 1.0  # within one grid step of the optimum

    def _lhs_evaluations(self, space, seed):
        for spent, point in enumerate(
            space.sample(self.BUDGET, seed=seed), start=1
        ):
            if _bowl_score(point) <= self.TARGET:
                return spent
        return None

    @pytest.mark.parametrize("seed", SEEDS)
    def test_surrogate_reaches_target_in_fewer_evaluations(self, seed):
        space = _bowl_space()
        sampler = SurrogateSampler(
            space, batch=8, rounds=8, candidates=256, seed=seed
        )
        trace = sampler.run(_bowl_evaluate)
        surrogate_evals = evaluations_to_target(trace, self.TARGET)
        lhs_evals = self._lhs_evaluations(space, seed)
        assert surrogate_evals is not None
        assert surrogate_evals <= self.BUDGET
        assert lhs_evals is None or surrogate_evals < lhs_evals
        # And with the budget spent, the model has found the optimum.
        assert trace.best_score == 0.0
        assert trace.best_point == {"x": 11, "y": 3}


class TestEvaluationsToTarget:
    def test_counts_in_evaluation_order(self):
        trace = AdaptiveTrace(rounds=[
            AdaptiveRound(index=0, space_size=9,
                          points=[{"x": 0}, {"x": 1}], scores=[5.0, 3.0]),
            AdaptiveRound(index=1, space_size=9,
                          points=[{"x": 2}, {"x": 3}], scores=[None, 1.0]),
        ])
        assert evaluations_to_target(trace, 3.0) == 2
        assert evaluations_to_target(trace, 1.0) == 4
        assert evaluations_to_target(trace, 0.5) is None

    def test_non_finite_scores_never_match(self):
        trace = AdaptiveTrace(rounds=[
            AdaptiveRound(index=0, space_size=4,
                          points=[{"x": 0}, {"x": 1}],
                          scores=[float("nan"), float("-inf")]),
        ])
        assert evaluations_to_target(trace, math.inf) is None


@pytest.mark.slow
class TestSurrogateCampaigns:
    def test_explore_memory_surrogate(self):
        result = explore_memory(
            _memory_space(),
            sampler="surrogate",
            sampler_options=dict(batch=3, rounds=2, seed=0),
            **TINY,
        )
        assert result.adaptive is not None
        assert 1 <= result.adaptive.evaluations <= 6
        assert result.adaptive.best_score is not None
        assert len(result.records()) >= 1
        # Deduplicated jobs, one outcome per job.
        keys = [job.key for job in result.jobs]
        assert len(keys) == len(set(keys)) == len(result.outcomes)

    def test_explore_system_rejects_unknown_sampler(self):
        with pytest.raises(ValueError, match="surrogate"):
            explore_system(sampler="halving")


@pytest.mark.slow
class TestSurrogateKillResume:
    """Replay stability through the job/cache machinery.

    A killed surrogate campaign must resume through the *identical*
    proposal path — same jobs in the same order — with every point
    finished before the kill served from cache, and final records
    identical to an uninterrupted reference run.
    """

    OPTIONS = dict(batch=3, rounds=2, seed=0)

    def _run(self, campaign_dir, **kwargs):
        return run_memory_campaign(
            _memory_space(), campaign_dir,
            sampler="surrogate", sampler_options=dict(self.OPTIONS),
            **TINY, **kwargs,
        )

    def test_kill_resume_identical_proposal_path(self, tmp_path):
        reference = self._run(str(tmp_path / "ref"))
        assert reference.adaptive is not None

        class Killed(Exception):
            pass

        def bomb(event):
            if event.done == 2:
                raise Killed()

        campaign_dir = str(tmp_path / "killed")
        with pytest.raises(Killed):
            self._run(campaign_dir, progress=bomb)

        journal = CampaignState.load(tmp_path / "killed" / JOURNAL_NAME)
        finished = set(journal.completed)
        assert finished  # the kill landed mid-campaign

        resumed = self._run(campaign_dir, resume=True)
        # Identical proposal path: same jobs, same order.
        assert [j.key for j in resumed.jobs] == [j.key for j in reference.jobs]
        # Zero re-evaluation of anything finished before the kill.
        for job, outcome in zip(resumed.jobs, resumed.outcomes):
            if job.key in finished:
                assert outcome.from_cache
        assert resumed.records() == reference.records()
        assert resumed.adaptive.best_score == reference.adaptive.best_score

    @pytest.mark.parametrize("executor", ["serial", "pool"])
    def test_executors_replay_identically(self, tmp_path, executor):
        reference = self._run(str(tmp_path / "ref"))
        result = self._run(
            str(tmp_path / executor), executor=executor, workers=2
        )
        assert [j.key for j in result.jobs] == [
            j.key for j in reference.jobs
        ]
        assert result.records() == reference.records()
