"""Tests for the successive-halving/zoom adaptive sampler."""

import math

import pytest

from repro.dse import (
    AdaptiveSampler,
    ParameterSpace,
    score_records,
)


def _toy_score(point):
    """Known-optimum bowl: minimum 0 at (x=11, y=3)."""
    return (point["x"] - 11) ** 2 + (point["y"] - 3) ** 2


def _toy_space():
    return ParameterSpace([("x", list(range(16))), ("y", list(range(16)))])


class TestRefine:
    def test_zooms_onto_survivor_window(self):
        space = ParameterSpace([("x", [0, 1, 2, 3, 4, 5, 6, 7])])
        scored = [({"x": 5}, 0.0), ({"x": 6}, 1.0), ({"x": 0}, 9.0), ({"x": 7}, 9.0)]
        refined = space.refine(scored, keep=0.5, margin=1)
        assert [a.values for a in refined.axes] == [(4, 5, 6, 7)]

    def test_margin_zero_is_tight(self):
        space = ParameterSpace([("x", [0, 1, 2, 3])])
        refined = space.refine([({"x": 2}, 0.0), ({"x": 3}, 5.0)], keep=0.5, margin=0)
        assert [a.values for a in refined.axes] == [(2,)]

    def test_unmentioned_axis_keeps_full_range(self):
        space = ParameterSpace([("x", [0, 1, 2]), ("y", [0, 1, 2])])
        refined = space.refine([({"x": 1}, 0.0)], keep=1.0, margin=0)
        values = {a.name: a.values for a in refined.axes}
        assert values["x"] == (1,)
        assert values["y"] == (0, 1, 2)

    def test_receiver_unchanged(self):
        space = ParameterSpace([("x", [0, 1, 2, 3])])
        space.refine([({"x": 0}, 0.0)], keep=1.0)
        assert space.size == 4

    def test_validation(self):
        space = ParameterSpace([("x", [0, 1])])
        with pytest.raises(ValueError):
            space.refine([], keep=0.5)
        with pytest.raises(ValueError):
            space.refine([({"x": 0}, 0.0)], keep=0.0)
        with pytest.raises(ValueError):
            space.refine([({"x": 99}, 0.0)], keep=1.0)


class TestScoreRecords:
    def test_single_objective_scores_by_value(self):
        records = [{"edp": 3.0}, None, {"edp": 1.0}]
        assert score_records(records, ("edp",)) == [3.0, None, 1.0]

    def test_single_objective_max_sense(self):
        records = [{"speedup": 2.0}, {"speedup": 5.0}]
        scores = score_records(records, (("speedup", "max"),))
        assert scores[1] < scores[0]

    def test_multi_objective_scores_by_dominance_rank(self):
        records = [
            {"lat": 1.0, "energy": 9.0},  # frontier
            {"lat": 9.0, "energy": 1.0},  # frontier
            {"lat": 9.0, "energy": 9.0},  # dominated
            None,
        ]
        scores = score_records(records, ("lat", "energy"))
        assert scores[0] == scores[1] == 0.0
        assert scores[2] > 0.0
        assert scores[3] is None

    def test_requires_objectives(self):
        with pytest.raises(ValueError):
            score_records([{"a": 1}], ())

    def test_non_finite_single_objective_is_unscorable(self):
        records = [
            {"edp": float("nan")},
            {"edp": float("inf")},
            {"edp": float("-inf")},
            {"edp": 2.0},
        ]
        assert score_records(records, ("edp",)) == [None, None, None, 2.0]

    def test_non_finite_multi_objective_is_unscorable(self):
        records = [
            {"lat": float("nan"), "energy": 1.0},
            {"lat": 1.0, "energy": 9.0},
            {"lat": 9.0, "energy": 9.0},
        ]
        scores = score_records(records, ("lat", "energy"))
        # The NaN record is out; the remaining two rank as if it never
        # existed (pre-fix, NaN joined the dominance matrix and sat on
        # rank 0 forever, shielding nothing but polluting the frontier).
        assert scores[0] is None
        assert scores[1] == 0.0
        assert scores[2] == 1.0


class TestNonFiniteScores:
    """Regression: NaN scores must not poison winner selection.

    Pre-fix, ``min(scored, key=...)`` kept a first-seen NaN forever
    (every ``candidate < nan`` comparison is false), so a broken point
    could become ``best_point`` and steer every zoom after it.
    """

    def test_nan_score_cannot_become_best_point(self):
        space = ParameterSpace([("x", list(range(8)))])

        def evaluate(points):
            # The grid-first point x=0 scores NaN; real optimum is x=1.
            return [
                float("nan") if p["x"] == 0 else float(p["x"])
                for p in points
            ]

        trace = AdaptiveSampler(space, batch=8, rounds=1).run(evaluate)
        assert trace.best_point == {"x": 1}
        assert trace.best_score == 1.0
        assert math.isfinite(trace.best_score)

    def test_all_nan_round_stops_early_like_unscorable(self):
        space = _toy_space()
        trace = AdaptiveSampler(space, batch=6, rounds=5).run(
            lambda pts: [float("nan")] * len(pts)
        )
        assert len(trace.rounds) == 1
        assert trace.best_point is None

    def test_nan_scores_do_not_reorder_refine_survivors(self):
        space = ParameterSpace([("x", list(range(10)))])
        scored = [
            ({"x": 9}, float("nan")),
            ({"x": 2}, 1.0),
            ({"x": 3}, 2.0),
        ]
        refined = space.refine(scored, keep=0.34, margin=0)
        # Pre-fix the NaN pair survived sorted() in place and the zoom
        # windowed onto x=9; the finite best must win instead.
        assert [a.values for a in refined.axes] == [(2,)]

    def test_refine_rejects_nothing_finite(self):
        space = ParameterSpace([("x", [0, 1])])
        with pytest.raises(ValueError, match="finitely scored"):
            space.refine([({"x": 0}, float("nan")), ({"x": 1}, None)])


class TestAdaptiveSampler:
    def test_converges_to_known_optimum(self):
        """The headline property: the zoom finds the exact optimum of a
        toy bowl in a fraction of the grid's evaluations."""
        space = _toy_space()
        for seed in range(3):
            sampler = AdaptiveSampler(space, batch=12, rounds=6, keep=0.4, seed=seed)
            trace = sampler.run(lambda pts: [_toy_score(p) for p in pts])
            assert trace.best_point == {"x": 11, "y": 3}
            assert trace.best_score == 0
            assert trace.evaluations < space.size / 3

    def test_deterministic_in_seed(self):
        space = _toy_space()
        runs = [
            AdaptiveSampler(space, batch=10, rounds=4, seed=7).run(
                lambda pts: [_toy_score(p) for p in pts]
            )
            for _ in range(2)
        ]
        assert runs[0].best_point == runs[1].best_point
        assert [r.points for r in runs[0].rounds] == [
            r.points for r in runs[1].rounds
        ]

    def test_never_evaluates_a_point_twice(self):
        space = ParameterSpace([("x", list(range(6)))])
        seen = []

        def evaluate(points):
            seen.extend(tuple(sorted(p.items())) for p in points)
            return [float(p["x"]) for p in points]

        AdaptiveSampler(space, batch=4, rounds=5, keep=0.5).run(evaluate)
        assert len(seen) == len(set(seen))

    def test_stops_when_space_collapses(self):
        space = ParameterSpace([("x", [0, 1])])
        trace = AdaptiveSampler(space, batch=4, rounds=10, keep=0.5).run(
            lambda pts: [float(p["x"]) for p in pts]
        )
        # Both values fit one batch; nothing left to draw afterwards.
        assert trace.evaluations == 2
        assert trace.best_point == {"x": 0}

    def test_unscorable_round_stops_early(self):
        space = _toy_space()
        trace = AdaptiveSampler(space, batch=6, rounds=5).run(
            lambda pts: [None] * len(pts)
        )
        assert len(trace.rounds) == 1
        assert trace.best_point is None

    def test_score_count_mismatch_raises(self):
        space = _toy_space()
        with pytest.raises(ValueError, match="scores"):
            AdaptiveSampler(space, batch=4, rounds=1).run(lambda pts: [1.0])

    def test_validation(self):
        space = _toy_space()
        with pytest.raises(ValueError):
            AdaptiveSampler(space, batch=0)
        with pytest.raises(ValueError):
            AdaptiveSampler(space, rounds=0)
        with pytest.raises(ValueError):
            AdaptiveSampler(space, keep=1.5)
