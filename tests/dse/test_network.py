"""repro.dse.net tests: protocol, server core, faults, supervisor.

The conformance suite proves :class:`NetworkExecutor`'s campaign
semantics match every other backend; this module proves the
*distributed* mechanics the issue demands — the wire protocol, the
server's synchronous claim core, a SIGKILLed server resuming with zero
re-evaluation (real subprocesses, real SIGKILL), a dropped connection
not losing an evaluated outcome, a killed worker's points being
reclaimed, and the supervisor's respawn/autoscale policy.
"""

import json
import os
import signal
import socket
import subprocess
import sys
import textwrap
import threading
import time

import pytest

from repro.dse import (
    SELFTEST_TARGET,
    CampaignRunner,
    CampaignState,
    Job,
    NetworkExecutor,
    ResultCache,
    campaign_key,
    run_checkpointed,
    run_network_worker,
)
from repro.dse.executors import task_id
from repro.dse.net import CampaignServer, ServerThread, Supervisor
from repro.dse.net.protocol import (
    MAX_LINE_BYTES,
    PROTOCOL_VERSION,
    Connection,
    ProtocolError,
    decode_message,
    encode_message,
    parse_connect,
    valid_worker_id,
)

KEY = campaign_key({"kind": "network-suite"})


def _jobs(points, **extra):
    return [Job(SELFTEST_TARGET, dict({"x": i}, **extra)) for i in range(points)]


def _free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def _src_env():
    import repro

    src = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    env = dict(os.environ)
    existing = env.get("PYTHONPATH", "")
    env["PYTHONPATH"] = src + (os.pathsep + existing if existing else "")
    return env


class TestProtocol:
    def test_parse_connect_accepts_host_port(self):
        assert parse_connect("localhost:4000") == ("localhost", 4000)
        assert parse_connect("10.1.2.3:1") == ("10.1.2.3", 1)
        assert parse_connect("[::1]:8080") == ("::1", 8080)

    @pytest.mark.parametrize("bad", [
        "nohost", "host:", ":4000", "host:abc", "host:0", "host:65536", "",
    ])
    def test_parse_connect_rejects_malformed(self, bad):
        with pytest.raises(ProtocolError):
            parse_connect(bad)

    def test_message_roundtrip(self):
        message = {"op": "lease", "worker": "w-1", "n": [1, 2.5, None]}
        assert decode_message(encode_message(message)) == message

    def test_decode_rejects_garbage(self):
        with pytest.raises(ProtocolError):
            decode_message(b"{torn")
        with pytest.raises(ProtocolError):
            decode_message(b'"a string, not an object"')
        with pytest.raises(ProtocolError):
            decode_message(b"x" * (MAX_LINE_BYTES + 1))

    def test_worker_id_charset(self):
        assert valid_worker_id("host-1.example_0")
        assert not valid_worker_id("../escape")
        assert not valid_worker_id("")
        assert not valid_worker_id(None)
        assert not valid_worker_id("x" * 200)


class TestServerCore:
    """The synchronous protocol core, without sockets."""

    def _server(self, tmp_path, **kwargs):
        return CampaignServer(str(tmp_path), lease_ttl=10.0, **kwargs)

    def test_hello_checks_version_and_worker(self, tmp_path):
        server = self._server(tmp_path)
        reply = server.handle_message(
            {"op": "hello", "worker": "w1", "version": PROTOCOL_VERSION}
        )
        assert reply["ok"] and reply["version"] == PROTOCOL_VERSION
        assert not server.handle_message(
            {"op": "hello", "worker": "w1", "version": 99}
        )["ok"]
        assert not server.handle_message(
            {"op": "hello", "worker": "../evil", "version": PROTOCOL_VERSION}
        )["ok"]

    def test_unknown_op_is_an_error_not_a_crash(self, tmp_path):
        reply = self._server(tmp_path).handle_message({"op": "explode"})
        assert not reply["ok"] and "unknown op" in reply["error"]

    def test_lease_result_cycle(self, tmp_path):
        server = self._server(tmp_path)
        jobs = _jobs(2)
        for job in jobs:
            server.queue.publish(job)
        assert server.handle_message({"op": "lease", "worker": "w1"})["op"] == "task"
        granted = server.handle_message({"op": "lease", "worker": "w2"})
        assert granted["op"] == "task"
        task = granted["task"]
        assert task["ttl"] == 10.0
        # A repeat lease from w2 renews its own claim (same task); a
        # third worker sees nothing — both points are held.
        renewed = server.handle_message({"op": "lease", "worker": "w2"})
        assert renewed["op"] == "task" and renewed["task"]["task"] == task["task"]
        assert server.handle_message({"op": "lease", "worker": "w3"})["op"] == "idle"
        assert server.handle_message(
            {"op": "heartbeat", "worker": "w2", "task": task["task"]}
        )["ok"]
        reply = server.handle_message({
            "op": "result", "worker": "w2", "task": task["task"],
            "outcome": [True, {"value": 42, "cost": 1}, None, 0.25],
        })
        assert reply["ok"] and "stale" not in reply
        # Result file + durable cache record both landed.
        ok, result, _, elapsed = server.queue.read_result(task["task"])
        assert ok and result["value"] == 42 and elapsed == 0.25
        assert server.cache.get(task["key"])["result"]["value"] == 42

    def test_result_for_consumed_task_is_stale_ack(self, tmp_path):
        server = self._server(tmp_path)
        reply = server.handle_message({
            "op": "result", "worker": "w1", "task": "ghost-0",
            "outcome": [True, {}, None, 0.0],
        })
        assert reply["ok"] and reply["stale"]
        assert not os.path.exists(server.queue.result_path("ghost-0"))

    def test_malformed_requests_are_one_line_errors(self, tmp_path):
        server = self._server(tmp_path)
        assert not server.handle_message({"op": "lease"})["ok"]
        assert not server.handle_message(
            {"op": "heartbeat", "worker": "w1"}
        )["ok"]
        assert not server.handle_message(
            {"op": "result", "worker": "w1", "task": "t", "outcome": [1]}
        )["ok"]

    def test_stopping_turns_leases_into_stop(self, tmp_path):
        server = self._server(tmp_path)
        server.queue.publish(_jobs(1)[0])
        server.stopping = True
        assert server.handle_message({"op": "lease", "worker": "w1"})["op"] == "stop"

    def test_cache_short_circuit_serves_without_a_worker(self, tmp_path):
        """A durable cache record with no result file (the server was
        killed between a result upload's cache write and ... nothing:
        the cache IS written first — this is the crashed-server resume
        window) is served directly at lease time."""
        server = self._server(tmp_path)
        job = _jobs(1, sleep_s=99.0)[0]  # would hang if ever evaluated
        server.queue.publish(job)
        server.cache.put(job.key, {
            "target": job.target, "spec": dict(job.spec),
            "result": {"value": 7, "cost": 3}, "elapsed": 0.1,
        })
        assert server.handle_message({"op": "lease", "worker": "w1"})["op"] == "idle"
        assert server.stats["cache_served"] == 1
        ok, result, _, _ = server.queue.read_result(task_id(job))
        assert ok and result["value"] == 7

    def test_status_counts(self, tmp_path):
        server = self._server(tmp_path)
        for job in _jobs(3):
            server.queue.publish(job)
        reply = server.handle_message({"op": "status"})
        assert reply["ok"] and reply["pending"] == 3 and reply["leased"] == 0
        grant = server.handle_message({"op": "lease", "worker": "w1"})
        reply = server.handle_message({"op": "status"})
        assert reply["leased"] == 1 and reply["workers"] == 1
        server.handle_message({
            "op": "result", "worker": "w1", "task": grant["task"]["task"],
            "outcome": [True, {"value": 0, "cost": 0}, None, 0.0],
        })
        reply = server.handle_message({"op": "status"})
        assert reply["pending"] == 2 and reply["leased"] == 0
        assert reply["results"] == 1


class TestNetworkFaults:
    def test_dropped_connection_keeps_the_evaluated_outcome(
        self, tmp_path, monkeypatch
    ):
        """Satellite: drop every connection *while* a worker evaluates;
        the worker must reconnect with backoff and deliver the already
        computed outcome — one invocation, one result."""
        monkeypatch.setenv("REPRO_DSE_SELFTEST_DIR", str(tmp_path / "inv"))
        campaign_dir = str(tmp_path / "camp")
        executor = NetworkExecutor(
            campaign_dir, lease_ttl=10.0, poll=0.01, timeout=60
        )
        worker = threading.Thread(
            target=run_network_worker,
            args=(executor.address,),
            kwargs=dict(worker_id="dropper", poll=0.01, backoff=0.05,
                        reconnect_timeout=30.0),
            daemon=True,
        )
        worker.start()

        def chaos():
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                if executor.server.stats["leases"] >= 1:
                    time.sleep(0.1)  # mid-evaluation (sleep_s=0.5)
                    executor.drop_connections()
                    return
                time.sleep(0.005)

        saboteur = threading.Thread(target=chaos, daemon=True)
        saboteur.start()
        jobs = _jobs(1, count=True, sleep_s=0.5)
        runner = CampaignRunner(
            workers=1,
            cache=ResultCache(os.path.join(campaign_dir, "cache")),
            executor=executor,
        )
        state = CampaignState.open(
            os.path.join(campaign_dir, "journal.jsonl"), KEY, total=1
        )
        outcomes = run_checkpointed(jobs, runner, state)
        saboteur.join(timeout=15)
        executor.close()
        state.close()
        worker.join(timeout=15)
        assert not worker.is_alive()
        assert [o.ok for o in outcomes] == [True]
        assert outcomes[0].result["value"] == 0
        # The drop really happened, and the point still ran exactly once.
        assert executor.server.stats["results"] == 1
        marker = tmp_path / "inv" / "count-0"
        assert marker.stat().st_size == 1

    def test_sigkill_one_of_two_spawned_workers(self, tmp_path, monkeypatch):
        """A SIGKILLed worker's leased point is reclaimed after TTL and
        the campaign still completes correctly."""
        monkeypatch.setenv("REPRO_DSE_SELFTEST_DIR", str(tmp_path / "inv"))
        campaign_dir = str(tmp_path / "camp")
        executor = NetworkExecutor(
            campaign_dir, spawn_workers=2, lease_ttl=1.0, poll=0.02,
            timeout=120,
        )
        killed = {"pid": None}

        def assassin():
            deadline = time.monotonic() + 30.0
            while time.monotonic() < deadline:
                if executor.server.stats["leases"] >= 2 and executor.procs:
                    victim = executor.procs[0]
                    os.kill(victim.pid, signal.SIGKILL)
                    killed["pid"] = victim.pid
                    return
                time.sleep(0.01)

        saboteur = threading.Thread(target=assassin, daemon=True)
        saboteur.start()
        jobs = _jobs(8, count=True, sleep_s=0.2)
        runner = CampaignRunner(
            workers=2,
            cache=ResultCache(os.path.join(campaign_dir, "cache")),
            executor=executor,
        )
        state = CampaignState.open(
            os.path.join(campaign_dir, "journal.jsonl"), KEY, total=8
        )
        outcomes = run_checkpointed(jobs, runner, state)
        saboteur.join(timeout=30)
        executor.close()
        state.close()
        assert killed["pid"] is not None, "saboteur never saw 2 leases"
        assert [o.ok for o in outcomes] == [True] * 8
        assert sorted(o.result["value"] for o in outcomes) == [
            2 * i for i in range(8)
        ]
        # Everything ran at least once; only the killed worker's
        # in-flight point may have run twice (it died mid-evaluation,
        # before its outcome was durable anywhere).
        sizes = [
            (tmp_path / "inv" / ("count-%d" % i)).stat().st_size
            for i in range(8)
        ]
        assert all(size >= 1 for size in sizes)
        assert sum(size - 1 for size in sizes) <= 1


#: Driver script for the SIGKILL-the-server test: a coordinator whose
#: server (and everything else) can be killed with one SIGKILL, then
#: relaunched with ``resume`` on the same directory and port.
DRIVER = textwrap.dedent(
    """
    import os, sys
    from repro.dse import (SELFTEST_TARGET, CampaignRunner, CampaignState,
                           Job, ResultCache, campaign_key, run_checkpointed)
    from repro.dse.net import NetworkExecutor

    campaign_dir, port, mode = sys.argv[1], int(sys.argv[2]), sys.argv[3]
    jobs = [Job(SELFTEST_TARGET, {"x": i, "count": True, "sleep_s": 0.3})
            for i in range(6)]
    executor = NetworkExecutor(campaign_dir, port=port, lease_ttl=10.0,
                               poll=0.02, timeout=120)
    runner = CampaignRunner(
        workers=2,
        cache=ResultCache(os.path.join(campaign_dir, "cache")),
        executor=executor,
    )
    state = CampaignState.open(
        os.path.join(campaign_dir, "journal.jsonl"),
        campaign_key({"kind": "net-kill"}),
        total=len(jobs), resume=(mode == "resume"),
    )
    try:
        outcomes = run_checkpointed(jobs, runner, state)
    finally:
        executor.close()
        state.close()
    assert all(o.ok for o in outcomes), outcomes
    print("COMPLETE %d" % len(outcomes))
    """
)


@pytest.mark.slow
class TestServerSigkillResume:
    def test_sigkill_server_resumes_with_zero_reevaluation(
        self, tmp_path, monkeypatch
    ):
        """The acceptance bar: SIGKILL the whole coordinator+server
        process mid-campaign; workers (separate processes, reconnecting
        with backoff) survive; a resumed server on the same port
        finishes the campaign and *no point evaluates twice* — an
        evaluated-but-unreported outcome is redelivered, not redone."""
        scratch = tmp_path / "inv"
        monkeypatch.setenv("REPRO_DSE_SELFTEST_DIR", str(scratch))
        campaign_dir = str(tmp_path / "camp")
        driver_path = tmp_path / "driver.py"
        driver_path.write_text(DRIVER)
        port = _free_port()
        env = _src_env()
        env["REPRO_DSE_SELFTEST_DIR"] = str(scratch)

        def launch(mode):
            return subprocess.Popen(
                [sys.executable, str(driver_path), campaign_dir,
                 str(port), mode],
                env=env, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
            )

        server = launch("fresh")
        workers = [
            subprocess.Popen(
                [sys.executable, "-m", "repro.dse", "worker",
                 "--connect", "127.0.0.1:%d" % port,
                 "--id", "nw%d" % i, "--poll", "0.05",
                 "--reconnect-backoff", "0.1",
                 "--reconnect-timeout", "60"],
                env=env, stdout=subprocess.DEVNULL,
            )
            for i in range(2)
        ]
        try:
            # Let both workers get busy (>= 3 evaluations started),
            # then SIGKILL the server process mid-flight.
            deadline = time.monotonic() + 60.0
            while time.monotonic() < deadline:
                if scratch.is_dir() and len(list(scratch.iterdir())) >= 3:
                    break
                if server.poll() is not None:
                    pytest.fail(
                        "server exited early:\n%s"
                        % server.stdout.read().decode()
                    )
                time.sleep(0.02)
            else:
                pytest.fail("workers never started evaluating")
            os.kill(server.pid, signal.SIGKILL)
            server.wait(timeout=10)

            resumed = launch("resume")
            out, _ = resumed.communicate(timeout=120)
            assert resumed.returncode == 0, out.decode()
            assert "COMPLETE 6" in out.decode()

            # The resumed coordinator told the workers to stop.
            for proc in workers:
                assert proc.wait(timeout=30) == 0

            # Zero re-evaluation across the server kill: each of the 6
            # points ran exactly once, even the ones in flight when the
            # server died (their outcomes were redelivered on
            # reconnect, under leases that had not expired).
            sizes = {
                marker.name: marker.stat().st_size
                for marker in scratch.iterdir()
            }
            assert sorted(sizes) == ["count-%d" % i for i in range(6)]
            assert all(size == 1 for size in sizes.values()), sizes
        finally:
            for proc in [server] + workers:
                if proc.poll() is None:
                    proc.kill()
                    proc.wait()


class _FakeProc:
    """A Popen stand-in the supervisor can poll/terminate."""

    def __init__(self):
        self.dead = False
        self.terminated = False

    def poll(self):
        return 0 if (self.dead or self.terminated) else None

    def terminate(self):
        self.terminated = True

    def kill(self):
        self.terminated = True

    def wait(self, timeout=None):
        return 0


class TestSupervisorPolicy:
    """The autoscaling/respawn policy, with fakes (no processes)."""

    def _supervisor(self, status, **kwargs):
        kwargs.setdefault("min_workers", 1)
        kwargs.setdefault("max_workers", 3)
        return Supervisor(
            ("127.0.0.1", 1), spawn=_FakeProc,
            probe=lambda: dict(status), **kwargs
        )

    def test_scales_to_pending_clamped_to_bounds(self):
        status = {"ok": True, "pending": 10, "stopping": False}
        sup = self._supervisor(status)
        assert sup.step()["started"] == 3  # ceiling
        status["pending"] = 2
        assert sup.step()["stopped"] == 1  # down to depth
        status["pending"] = 0
        assert sup.step()["stopped"] == 1  # floor keeps one warm
        assert len(sup.procs) == 1

    def test_respawns_dead_workers(self):
        status = {"ok": True, "pending": 2, "stopping": False}
        sup = self._supervisor(status)
        assert sup.step()["started"] == 2
        sup.procs[0].dead = True
        info = sup.step()
        assert info["died"] == 1 and info["started"] == 1
        assert sup.respawned == 1

    def test_stopping_server_winds_the_fleet_down(self):
        status = {"ok": True, "pending": 5, "stopping": False}
        sup = self._supervisor(status)
        sup.step()
        status["stopping"] = True
        info = sup.step()
        assert info["stopped"] == 3 and not sup.procs

    def test_unreachable_server_respects_grace(self):
        sup = Supervisor(
            ("127.0.0.1", 1), min_workers=1, max_workers=3, grace=3,
            spawn=_FakeProc, probe=lambda: {"ok": True, "pending": 2},
        )
        sup.step()
        assert len(sup.procs) == 2

        def boom():
            raise OSError("connection refused")

        sup._probe = boom
        for _ in range(2):
            assert sup.step()["alive"] == 2  # kept through the grace window
        assert sup.step()["alive"] == 0  # grace exhausted: wind down

    def test_rejects_inverted_bounds(self):
        with pytest.raises(ValueError):
            Supervisor(("h", 1), min_workers=3, max_workers=1)

    def test_run_winds_down_cleanly_on_stopping(self):
        calls = {"n": 0}

        def probe():
            calls["n"] += 1
            return {"ok": True, "pending": 2, "stopping": calls["n"] > 1}

        sup = Supervisor(
            ("127.0.0.1", 1), min_workers=1, max_workers=3, interval=0.01,
            spawn=_FakeProc, probe=probe,
        )
        lines = []
        assert sup.run(log=lines.append) == 0
        assert not sup.procs
        assert any("fleet" in line for line in lines)

    def test_run_gives_up_after_grace_misses(self):
        def boom():
            raise OSError("refused")

        sup = Supervisor(
            ("127.0.0.1", 1), min_workers=1, max_workers=2, interval=0.01,
            grace=2, spawn=_FakeProc, probe=boom,
        )
        assert sup.run() == 1


class TestSupervisorIntegration:
    def test_respawn_feeds_a_real_queue(self, tmp_path, monkeypatch):
        """Real server thread, real worker subprocesses: SIGKILL one
        worker; the supervisor replaces it and the queue still drains."""
        monkeypatch.setenv("REPRO_DSE_SELFTEST_DIR", str(tmp_path / "inv"))
        server = CampaignServer(str(tmp_path / "camp"), lease_ttl=2.0)
        thread = ServerThread(server)
        thread.start()
        jobs = _jobs(4, sleep_s=0.3)
        for job in jobs:
            server.queue.publish(job)
        sup = Supervisor(
            ("127.0.0.1", server.port), min_workers=1, max_workers=2,
            interval=0.1, worker_poll=0.05,
        )
        killed = False
        try:
            deadline = time.monotonic() + 90.0
            while time.monotonic() < deadline:
                sup.step()
                if (
                    not killed
                    and sup.procs
                    and server.stats["leases"] >= 1
                ):
                    os.kill(sup.procs[0].pid, signal.SIGKILL)
                    killed = True
                if len(server.queue.available_results()) == 4:
                    break
                time.sleep(0.1)
            results = server.queue.available_results()
            assert len(results) == 4
            assert killed and sup.respawned >= 1
            for job in jobs:
                ok, result, _, _ = server.queue.read_result(task_id(job))
                assert ok and result["value"] == 2 * job.spec["x"]
        finally:
            sup.shutdown()
            thread.stop()


class TestConnectionClient:
    def test_request_pairs_are_thread_safe(self, tmp_path):
        """Concurrent requests over one connection never interleave
        frames (the worker's heartbeat thread relies on this)."""
        server = CampaignServer(str(tmp_path), lease_ttl=5.0)
        thread = ServerThread(server)
        thread.start()
        conn = Connection("127.0.0.1", server.port, timeout=10.0)
        conn.connect()
        errors = []

        def hammer(worker):
            try:
                for _ in range(50):
                    reply = conn.request({
                        "op": "hello", "worker": worker,
                        "version": PROTOCOL_VERSION,
                    })
                    assert reply["ok"], reply
            except Exception as exc:  # noqa: BLE001 - collected for assert
                errors.append(exc)

        threads = [
            threading.Thread(target=hammer, args=("w%d" % i,))
            for i in range(4)
        ]
        for worker_thread in threads:
            worker_thread.start()
        for worker_thread in threads:
            worker_thread.join(timeout=30)
        conn.close()
        thread.stop()
        assert errors == []

    def test_connect_refused_raises_oserror(self):
        conn = Connection("127.0.0.1", _free_port(), timeout=1.0)
        with pytest.raises(OSError):
            conn.connect()


class TestWorkerClient:
    def test_once_on_idle_server(self, tmp_path):
        server = CampaignServer(str(tmp_path), lease_ttl=5.0)
        thread = ServerThread(server)
        thread.start()
        try:
            assert run_network_worker(
                ("127.0.0.1", server.port), worker_id="oneshot", once=True
            ) == 0
        finally:
            thread.stop()

    def test_reconnect_timeout_gives_up(self):
        port = _free_port()
        start = time.monotonic()
        with pytest.raises(ConnectionError):
            run_network_worker(
                ("127.0.0.1", port), worker_id="patient",
                backoff=0.05, reconnect_timeout=0.4,
            )
        assert time.monotonic() - start < 10.0

    def test_connect_string_form(self, tmp_path):
        server = CampaignServer(str(tmp_path), lease_ttl=5.0)
        thread = ServerThread(server)
        thread.start()
        try:
            assert run_network_worker(
                "127.0.0.1:%d" % server.port, worker_id="stringy", once=True
            ) == 0
        finally:
            thread.stop()


class TestCliInProcess:
    """Fast-tier CLI coverage: serve and supervise, no subprocesses
    beyond the one spawned worker."""

    def test_serve_runs_a_one_point_campaign(self, tmp_path, capsys):
        from repro.dse.__main__ import main

        spec = tmp_path / "spec.json"
        spec.write_text(json.dumps({
            "kind": "memory",
            "axes": {"subarray_rows": [256], "wer_target": [1e-9]},
            "settings": {"num_words": 100, "error_population": 5000},
            "sampler": "grid",
        }))
        port = _free_port()
        assert main([
            "serve", str(spec), "--dir", str(tmp_path / "camp"), "--quiet",
            "--port", str(port), "--spawn-workers", "1",
            "--stall-timeout", "120",
        ]) == 0
        out = capsys.readouterr()
        assert "campaign finished" in out.out
        assert "serving campaign on" in out.err

    def test_supervise_exits_cleanly_when_server_is_stopping(self, tmp_path):
        from repro.dse.__main__ import main

        server = CampaignServer(str(tmp_path), lease_ttl=5.0)
        server.stopping = True
        thread = ServerThread(server)
        thread.start()
        try:
            assert main([
                "supervise", "--connect", "127.0.0.1:%d" % server.port,
                "--min", "0", "--max", "1", "--interval", "0.05", "--quiet",
            ]) == 0
        finally:
            thread.stop()


@pytest.mark.slow
class TestCliEndToEnd:
    def test_serve_with_spawned_workers_and_status_json(self, tmp_path):
        """`serve` + `--spawn-workers 2` + `status --json`: the CLI
        surface of the subsystem, end to end over real TCP."""
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps({
            "kind": "memory",
            "axes": {"subarray_rows": [128, 256], "wer_target": [1e-9]},
            "settings": {"num_words": 100, "error_population": 5000},
            "sampler": "grid",
        }))
        campaign_dir = str(tmp_path / "camp")
        port = _free_port()
        env = _src_env()
        serve = subprocess.run(
            [sys.executable, "-m", "repro.dse", "serve", str(spec_path),
             "--dir", campaign_dir, "--quiet", "--port", str(port),
             "--spawn-workers", "2", "--stall-timeout", "120"],
            env=env, capture_output=True, text=True, timeout=300,
        )
        assert serve.returncode == 0, serve.stderr + serve.stdout
        assert "campaign finished" in serve.stdout
        assert "points:   2" in serve.stdout
        status = subprocess.run(
            [sys.executable, "-m", "repro.dse", "status",
             "--dir", campaign_dir, "--json"],
            env=env, capture_output=True, text=True, timeout=60,
        )
        assert status.returncode == 0, status.stderr
        payload = json.loads(status.stdout)
        assert payload["done"] == 2 and payload["failed"] == 0
        assert payload["leased"] == 0
        assert payload["cache_entries"] == 2
