"""Regenerate the committed ``analyze_campaign/`` golden fixture.

The fixture is a tiny, fully deterministic campaign directory (fixed
keys, fixed stamps) exercising every analytics surface at once: ok /
failed / timed-out / cached completions, a retry, a quarantined point,
two worker claim journals (one worker dying mid-task), and a result
cache whose memory-kind records feed the Pareto fold.  The expected
``analyze --json`` payload is committed next to it; regenerate both
after an intentional report-format change with::

    PYTHONPATH=src python tests/dse/fixtures/make_analyze_campaign.py
"""

import json
import os
import sys

HERE = os.path.dirname(os.path.abspath(__file__))
ROOT = os.path.join(HERE, "analyze_campaign")

K1 = "a1" + "0" * 14
K2 = "b2" + "0" * 14
K3 = "c3" + "0" * 14
K4 = "d4" + "0" * 14
K5 = "e5" + "0" * 14

JOURNAL = [
    {
        "event": "begin",
        "version": 2,
        "campaign_key": "fixture-analyze-0001",
        "total": 5,
        "meta": {
            "kind": "memory",
            "sampler": "grid",
            "objectives": [["write_latency", "min"], ["write_energy", "min"]],
        },
        "created": 1000.0,
        "updated": 1000.0,
    },
    {"event": "started", "key": K1, "t": 1000.5},
    {"event": "started", "key": K2, "t": 1000.7},
    {"event": "started", "key": K3, "t": 1000.9},
    {"event": "started", "key": K5, "t": 1001.1},
    {"event": "done", "key": K1, "elapsed": 2.0, "t": 1003.0},
    {"event": "done", "key": K2, "elapsed": 4.0, "t": 1005.0},
    {"event": "retry", "key": K3, "attempt": 1, "backoff": 0.0,
     "error": "RuntimeError: boom", "t": 1005.5},
    {"event": "failed", "key": K3, "elapsed": 1.5,
     "error": "RuntimeError: boom", "attempts": 2, "t": 1007.0},
    {"event": "quarantine", "key": K3, "attempts": 2, "t": 1007.1},
    {"event": "cached", "key": K4, "ok": True, "elapsed": 0.5, "t": 1007.5},
    {"event": "failed", "key": K5, "elapsed": 3.0,
     "error": "EvaluationTimeout: evaluation exceeded its 3s deadline",
     "timeout": True, "t": 1009.0},
]

# (key, write_latency, write_energy): K4 dominates K1, K2 survives.
CACHE_ROWS = [(K1, 2.0, 3.0), (K2, 1.0, 4.0), (K4, 1.5, 2.5)]

LEASES = {
    # w1 finishes K1 and dies holding K3 (its last heartbeat at 1005.0
    # bounds the busy credit); w2 finishes K2 and K5.
    "w1": [
        {"event": "claim", "task": K1 + "-0", "ttl": 30.0, "t": 1001.0},
        {"event": "heartbeat", "task": K1 + "-0", "ttl": 30.0, "t": 1002.0},
        {"event": "done", "task": K1 + "-0", "t": 1003.0},
        {"event": "claim", "task": K3 + "-0", "ttl": 30.0, "t": 1004.0},
        {"event": "heartbeat", "task": K3 + "-0", "ttl": 30.0, "t": 1005.0},
    ],
    "w2": [
        {"event": "claim", "task": K2 + "-0", "ttl": 30.0, "t": 1001.2},
        {"event": "done", "task": K2 + "-0", "t": 1005.0},
        {"event": "claim", "task": K5 + "-0", "ttl": 30.0, "t": 1006.0},
        {"event": "done", "task": K5 + "-0", "t": 1009.0},
    ],
}


def main() -> int:
    sys.path.insert(0, os.path.join(HERE, "..", "..", "..", "src"))
    from repro.dse.analytics import build_report
    from repro.dse.cache import ResultCache

    os.makedirs(ROOT, exist_ok=True)
    with open(os.path.join(ROOT, "journal.jsonl"), "w") as handle:
        for event in JOURNAL:
            handle.write(json.dumps(event, separators=(",", ":")) + "\n")

    cache = ResultCache(os.path.join(ROOT, "cache"))
    for key, latency, energy in CACHE_ROWS:
        cache.put(
            key,
            {
                "target": "dse-memory-point",
                "spec": {
                    "node_nm": 45,
                    "constraints": {"wer_target": 1e-9},
                },
                "result": {
                    "feasible": True,
                    "point": {
                        "config": {"subarray_rows": 128},
                        "write_latency": latency,
                        "write_energy": energy,
                    },
                },
                "elapsed": 0.5,
            },
        )

    leases_dir = os.path.join(ROOT, "work", "leases")
    os.makedirs(leases_dir, exist_ok=True)
    for worker, events in LEASES.items():
        with open(os.path.join(leases_dir, worker + ".jsonl"), "w") as handle:
            for seq, event in enumerate(events, start=1):
                line = dict(event, worker=worker, seq=seq)
                handle.write(json.dumps(line, separators=(",", ":")) + "\n")

    payload = build_report(ROOT).to_dict()
    expected = os.path.join(HERE, "analyze_campaign_expected.json")
    with open(expected, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print("wrote %s and %s" % (ROOT, expected))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
