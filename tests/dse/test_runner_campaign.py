"""Tests for the campaign runner and the cross-layer entry points."""

import pytest

from repro.dse import (
    CampaignRunner,
    Job,
    ParameterSpace,
    ResultCache,
    explore_memory,
    explore_system,
    get_target,
    register_target,
)
from repro.magpie.scenarios import Scenario


def _echo(spec, seed):
    return {"value": spec["x"] * 2, "seed": seed}


def _fragile(spec, seed):
    if spec["x"] == 2:
        raise ValueError("point 2 is broken")
    return {"value": spec["x"]}


@pytest.fixture(autouse=True)
def _targets():
    register_target("test-echo", _echo)
    register_target("test-fragile", _fragile)


class TestRunner:
    def test_serial_run_order_and_results(self):
        jobs = [Job("test-echo", {"x": i}) for i in range(4)]
        results = CampaignRunner(workers=1).run(jobs)
        assert [r.result["value"] for r in results] == [0, 2, 4, 6]
        assert all(r.ok and not r.from_cache for r in results)

    def test_failure_isolation(self):
        jobs = [Job("test-fragile", {"x": i}) for i in range(4)]
        results = CampaignRunner(workers=1).run(jobs)
        assert [r.ok for r in results] == [True, True, False, True]
        assert "point 2 is broken" in results[2].error
        assert results[2].result is None

    def test_duplicate_jobs_evaluate_once(self):
        calls = []

        def counting(spec, seed):
            calls.append(spec["x"])
            return {"v": spec["x"]}

        register_target("test-count", counting)
        jobs = [Job("test-count", {"x": 1})] * 3
        results = CampaignRunner(workers=1).run(jobs)
        assert len(calls) == 1
        assert all(r.ok and r.result == {"v": 1} for r in results)

    def test_cache_hits_skip_evaluation(self, tmp_path):
        calls = []

        def counting(spec, seed):
            calls.append(spec["x"])
            return {"v": spec["x"]}

        register_target("test-count2", counting)
        cache = ResultCache(str(tmp_path))
        jobs = [Job("test-count2", {"x": i}) for i in range(3)]
        first = CampaignRunner(workers=1, cache=cache).run(jobs)
        second = CampaignRunner(workers=1, cache=cache).run(jobs)
        assert len(calls) == 3
        assert all(r.from_cache for r in second)
        assert [r.result for r in first] == [r.result for r in second]

    def test_errors_not_cached(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        jobs = [Job("test-fragile", {"x": 2})]
        CampaignRunner(workers=1, cache=cache).run(jobs)
        assert len(cache) == 0

    def test_content_seed_passed_to_target(self):
        job = Job("test-echo", {"x": 5})
        (result,) = CampaignRunner(workers=1).run([job])
        assert result.result["seed"] == job.seed

    def test_unknown_target(self):
        with pytest.raises(KeyError):
            get_target("no-such-target")

    def test_rejects_zero_workers(self):
        with pytest.raises(ValueError):
            CampaignRunner(workers=0)


@pytest.mark.slow
class TestMemoryCampaign:
    def test_small_grid_cold_then_warm(self, tmp_path):
        space = ParameterSpace().add("subarray_rows", [128, 256]).add(
            "wer_target", [1e-9, 1e-12]
        )
        settings = dict(
            num_words=200, error_population=10_000, cache_dir=str(tmp_path)
        )
        cold = explore_memory(space, **settings)
        warm = explore_memory(space, **settings)
        assert len(cold.outcomes) == 4
        assert cold.cache_hits == 0
        assert warm.cache_hits == 4
        # Warm results are bit-identical to the cold run.
        assert cold.records() == warm.records()

    def test_serial_equals_parallel(self):
        space = ParameterSpace().add("subarray_rows", [128, 256])
        a = explore_memory(space, num_words=200, error_population=10_000, workers=1)
        b = explore_memory(space, num_words=200, error_population=10_000, workers=2)
        assert a.records() == b.records()

    def test_invalid_point_is_isolated(self):
        space = ParameterSpace().add("subarray_rows", [256, 2048])
        result = explore_memory(
            space, num_words=200, error_population=10_000, workers=1
        )
        assert len(result.errors()) == 1
        assert "subarray_rows" in result.errors()[0].error
        assert len(result.records()) == 1

    def test_unknown_axis_rejected_at_build(self):
        space = ParameterSpace().add("warp_factor", [9])
        with pytest.raises(ValueError):
            explore_memory(space, num_words=200, error_population=10_000)

    def test_records_carry_objectives_and_pareto_is_subset(self):
        space = ParameterSpace().add("subarray_rows", [128, 256])
        result = explore_memory(
            space, num_words=200, error_population=10_000, workers=1
        )
        records = result.records()
        for row in records:
            for key in ("write_latency", "write_energy", "area", "edp_proxy"):
                assert key in row
        front = result.pareto()
        assert 1 <= len(front) <= len(records)

    def test_wer_axis_tightens_latency(self):
        space = ParameterSpace().add("wer_target", [1e-6, 1e-15])
        result = explore_memory(
            space, num_words=200, error_population=10_000, workers=1
        )
        by_target = {row["wer_target"]: row for row in result.records()}
        assert by_target[1e-15]["write_latency"] > by_target[1e-6]["write_latency"]


@pytest.mark.slow
class TestSystemCampaign:
    def test_grid_matches_flow_run(self, tmp_path):
        result = explore_system(
            workloads=["bodytrack"],
            scenarios=[Scenario.FULL_SRAM, Scenario.FULL_L2_STT],
            cache_dir=str(tmp_path),
        )
        assert len(result.results) == 2
        records = result.records()
        assert {row["scenario"] for row in records} == {
            "Full-SRAM",
            "Full-L2-STT-MRAM",
        }
        warm = explore_system(
            workloads=["bodytrack"],
            scenarios=[Scenario.FULL_SRAM, Scenario.FULL_L2_STT],
            cache_dir=str(tmp_path),
        )
        assert sorted(map(str, warm.records())) == sorted(map(str, records))
        assert warm.cache_stats["hits"] == 2

    def test_stt_beats_sram_on_energy(self):
        result = explore_system(
            workloads=["bodytrack"],
            scenarios=[Scenario.FULL_SRAM, Scenario.FULL_L2_STT],
            workers=1,
        )
        rows = {row["scenario"]: row for row in result.records()}
        assert rows["Full-L2-STT-MRAM"]["energy"] < rows["Full-SRAM"]["energy"]
