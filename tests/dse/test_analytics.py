"""Tests for read-side campaign analytics (`analyze` + build_report)."""

import json
import os
import shutil

import pytest

from repro.dse import CampaignState, campaign_key, journal_path
from repro.dse.__main__ import main
from repro.dse.analytics import build_report, percentile

FIXTURES = os.path.join(os.path.dirname(__file__), "fixtures")
GOLDEN_DIR = os.path.join(FIXTURES, "analyze_campaign")
GOLDEN_EXPECTED = os.path.join(FIXTURES, "analyze_campaign_expected.json")

MEMORY_SPEC = {
    "kind": "memory",
    "axes": {"subarray_rows": [128, 256], "wer_target": [1e-9]},
    "settings": {"num_words": 100, "error_population": 5000},
    "sampler": "grid",
}


def _write_spec(tmp_path, spec):
    path = tmp_path / "spec.json"
    path.write_text(json.dumps(spec))
    return str(path)


def _assert_close(actual, expected, path="$"):
    """Recursive equality, floats compared with tolerance.

    The golden payload is committed as rendered JSON; exact float
    round-trips are guaranteed by json itself, but the tolerance keeps
    the fixture stable across any future formatting change.
    """
    if isinstance(expected, dict):
        assert isinstance(actual, dict), path
        assert sorted(actual) == sorted(expected), path
        for key in expected:
            _assert_close(actual[key], expected[key], "%s.%s" % (path, key))
    elif isinstance(expected, list):
        assert isinstance(actual, list), path
        assert len(actual) == len(expected), path
        for i, (a, e) in enumerate(zip(actual, expected)):
            _assert_close(a, e, "%s[%d]" % (path, i))
    elif isinstance(expected, bool):
        assert actual is expected, path
    elif isinstance(expected, (int, float)):
        assert actual == pytest.approx(expected, rel=1e-9, abs=1e-12), path
    else:
        assert actual == expected, path


class TestPercentile:
    def test_single_value(self):
        assert percentile([7.0], 0) == 7.0
        assert percentile([7.0], 50) == 7.0
        assert percentile([7.0], 100) == 7.0

    def test_linear_interpolation(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert percentile(values, 50) == 2.5
        assert percentile(values, 0) == 1.0
        assert percentile(values, 100) == 4.0
        assert percentile(values, 25) == 1.75

    def test_order_independent(self):
        assert percentile([4.0, 1.0, 3.0, 2.0], 50) == 2.5

    def test_empty_raises(self):
        with pytest.raises(ValueError, match="empty"):
            percentile([], 50)

    def test_out_of_range_raises(self):
        with pytest.raises(ValueError, match="0, 100"):
            percentile([1.0], 101)
        with pytest.raises(ValueError, match="0, 100"):
            percentile([1.0], -1)


class TestGoldenFixture:
    """The committed campaign directory replays to the committed payload.

    Regenerate both after an intentional format change:
    ``PYTHONPATH=src python tests/dse/fixtures/make_analyze_campaign.py``.
    """

    def test_analyze_json_matches_golden(self, capsys):
        assert main(["analyze", GOLDEN_DIR, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        with open(GOLDEN_EXPECTED) as handle:
            expected = json.load(handle)
        _assert_close(payload, expected)

    def test_fixture_covers_every_family(self):
        """The fixture earns its keep: all four analytics families are
        non-trivially populated (guards against a regeneration that
        silently hollows it out)."""
        report = build_report(GOLDEN_DIR)
        assert report.latency is not None and report.latency["count"] == 4
        assert report.latency["p50"] == pytest.approx(2.5)
        assert report.completions == 4
        assert report.throughput == pytest.approx(4 / 8.5)
        assert report.rates["cache_hit"] == pytest.approx(0.2)
        assert report.rates["retry"] == pytest.approx(0.2)
        assert report.rates["timeout"] == pytest.approx(0.2)
        workers = {fold.worker: fold for fold in report.workers}
        assert set(workers) == {"w1", "w2"}
        # w1 died holding K3: busy credit stops at its last heartbeat.
        assert workers["w1"].utilization == pytest.approx(0.75)
        assert workers["w1"].completed == 1
        assert workers["w2"].completed == 2
        assert [s.front_size for s in report.pareto] == [1, 2, 2]
        assert report.pareto[-1].hypervolume == pytest.approx(0.5)
        assert report.status["done"] == 4
        assert report.status["quarantined"] == 1
        assert report.status["remaining"] == 0
        assert report.accounting_consistent

    def test_human_output(self, capsys):
        assert main(["analyze", GOLDEN_DIR]) == 0
        out = capsys.readouterr().out
        assert "4/5 done, 2 failed (1 timed out), 0 remaining, 1 quarantined" in out
        assert "WARNING" not in out
        assert "throughput:" in out
        assert "latency:    p50" in out
        assert "cache-hit 20.0%" in out
        assert "worker:     w1" in out
        assert "worker:     w2" in out
        assert "pareto:     objectives [write_latency:min, write_energy:min]" in out

    def test_objectives_override(self, capsys):
        assert main([
            "analyze", GOLDEN_DIR, "--json",
            "--objectives", "write_energy:min",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["pareto"]["objectives"] == [["write_energy", "min"]]
        # Single-objective front is always a single record.
        assert all(
            s["front_size"] <= 1 for s in payload["pareto"]["samples"]
        )

    def test_malformed_objective_rejected(self):
        with pytest.raises(SystemExit):
            main(["analyze", GOLDEN_DIR, "--objectives", "edp:sideways"])

    def test_samples_flag_caps_series(self, capsys):
        assert main(["analyze", GOLDEN_DIR, "--json", "--samples", "1"]) == 0
        payload = json.loads(capsys.readouterr().out)
        samples = payload["pareto"]["samples"]
        assert len(samples) == 1
        assert samples[-1]["completed"] == 3  # final state always kept


class TestDamageTolerance:
    def test_torn_tail_is_reported_not_fatal(self, tmp_path, capsys):
        camp = str(tmp_path / "camp")
        shutil.copytree(GOLDEN_DIR, camp)
        with open(os.path.join(camp, "journal.jsonl"), "a") as handle:
            handle.write('{"event": "done", "key": "ff00", "elap')  # no \n
        assert main(["analyze", camp, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["journal"]["torn_bytes"] > 0
        assert payload["status"]["done"] == 4  # the torn line never counts
        assert main(["analyze", camp]) == 0
        assert "torn tail" in capsys.readouterr().out

    def test_mid_crash_journal_yields_partial_report(self, tmp_path):
        """A campaign killed right after begin still analyzes cleanly."""
        camp = tmp_path / "camp"
        camp.mkdir()
        CampaignState.open(
            journal_path(str(camp)), campaign_key({"kind": "t"}), total=3
        ).close()
        report = build_report(str(camp))
        assert report.latency is None
        assert report.completions == 0
        assert report.throughput == 0.0
        assert report.workers == []
        assert report.pareto == []
        assert report.accounting_consistent
        assert report.status["remaining"] == 3

    def test_missing_journal_exits_2(self, tmp_path, capsys):
        assert main(["analyze", str(tmp_path)]) == 2
        assert "no campaign journal" in capsys.readouterr().err

    def test_interior_corruption_exits_2(self, tmp_path, capsys):
        camp = tmp_path / "camp"
        camp.mkdir()
        state = CampaignState.open(
            journal_path(str(camp)), campaign_key({"kind": "t"}), total=1
        )
        state.close()
        with open(journal_path(str(camp)), "a") as handle:
            handle.write("{ not json\n")
            handle.write('{"event": "total", "total": 2}\n')
        assert main(["analyze", str(camp), "--json"]) == 2
        assert capsys.readouterr().err.strip()


class TestEndToEnd:
    def test_serial_campaign_reports_all_families(self, tmp_path, capsys):
        spec = _write_spec(tmp_path, MEMORY_SPEC)
        camp = str(tmp_path / "camp")
        assert main([
            "run", spec, "--dir", camp, "--quiet", "--executor", "serial",
        ]) == 0
        capsys.readouterr()
        assert main(["analyze", camp, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["status"]["done"] == 2
        assert payload["accounting_consistent"] is True
        assert payload["latency"]["count"] == 2
        assert payload["latency"]["p50"] > 0
        assert payload["throughput"]["completions"] == 2
        assert payload["rates"]["cache_hit"] == 0.0
        # Memory campaigns default to the edp_proxy objective, joined
        # from the result cache's nested memory records.
        assert payload["pareto"]["objectives"] == ["edp_proxy"]
        samples = payload["pareto"]["samples"]
        assert samples and samples[-1]["front_size"] >= 1
        assert samples[-1]["completed"] == 2
        assert payload["workers"] == []  # serial: no claim journals

    def test_worker_pull_campaign_reports_worker_fold(
        self, tmp_path, capsys
    ):
        spec = _write_spec(tmp_path, MEMORY_SPEC)
        camp = str(tmp_path / "camp")
        assert main([
            "run", spec, "--dir", camp, "--quiet",
            "--executor", "worker-pull", "--spawn-workers", "2",
        ]) == 0
        capsys.readouterr()
        assert main(["analyze", camp, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["status"]["done"] == 2
        assert payload["latency"]["count"] == 2
        assert payload["pareto"]["samples"]
        workers = payload["workers"]
        assert workers  # lease journals fed the utilization fold
        assert sum(fold["completed"] for fold in workers) == 2
        for fold in workers:
            assert 0.0 <= fold["utilization"] <= 1.0
            assert fold["busy_s"] <= fold["span_s"] or fold["span_s"] == 0

    def test_resume_after_run_keeps_report_consistent(
        self, tmp_path, capsys
    ):
        """analyze on a resumed (fully cached) campaign keeps the
        summary counters while the tail holds no fresh evaluation."""
        spec = _write_spec(tmp_path, MEMORY_SPEC)
        camp = str(tmp_path / "camp")
        assert main([
            "run", spec, "--dir", camp, "--quiet", "--executor", "serial",
        ]) == 0
        assert main([
            "resume", spec, "--dir", camp, "--quiet", "--executor", "serial",
        ]) == 0
        capsys.readouterr()
        assert main(["analyze", camp, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["status"]["done"] == 2
        assert payload["accounting_consistent"] is True
