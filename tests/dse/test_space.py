"""Tests for repro.dse.space: axes, grid enumeration, LHS sampling."""

import pytest

from repro.dse import Axis, ParameterSpace


class TestAxis:
    def test_rejects_empty_values(self):
        with pytest.raises(ValueError):
            Axis("rows", [])

    def test_rejects_empty_name(self):
        with pytest.raises(ValueError):
            Axis("", [1])

    def test_len(self):
        assert len(Axis("rows", [128, 256])) == 2


class TestGrid:
    def test_size_and_count(self):
        space = ParameterSpace([("a", [1, 2]), ("b", [10, 20, 30])])
        assert space.size == 6
        assert len(list(space.grid())) == 6

    def test_order_is_axis_major(self):
        space = ParameterSpace().add("a", [1, 2]).add("b", ["x", "y"])
        points = list(space.grid())
        assert points[0] == {"a": 1, "b": "x"}
        assert points[1] == {"a": 1, "b": "y"}
        assert points[-1] == {"a": 2, "b": "y"}

    def test_duplicate_axis_rejected(self):
        space = ParameterSpace().add("a", [1])
        with pytest.raises(ValueError):
            space.add("a", [2])

    def test_empty_space(self):
        space = ParameterSpace()
        assert space.size == 1
        assert list(space.grid()) == []


class TestLatinHypercube:
    def test_deterministic_in_seed(self):
        space = ParameterSpace([("a", [1, 2, 3, 4]), ("b", list(range(8)))])
        assert space.sample(6, seed=3) == space.sample(6, seed=3)
        assert space.sample(6, seed=3) != space.sample(6, seed=4)

    def test_stratification_covers_axis(self):
        # count == axis length -> every value appears exactly once.
        space = ParameterSpace([("a", [1, 2, 3, 4])])
        values = sorted(p["a"] for p in space.sample(4, seed=0))
        assert values == [1, 2, 3, 4]

    def test_sample_count(self):
        space = ParameterSpace([("a", [1, 2]), ("b", [3, 4, 5])])
        assert len(space.sample(10, seed=1)) == 10

    def test_values_come_from_axes(self):
        space = ParameterSpace([("a", [128, 256, 512])])
        assert all(p["a"] in (128, 256, 512) for p in space.sample(20, seed=2))

    def test_rejects_nonpositive_count(self):
        with pytest.raises(ValueError):
            ParameterSpace([("a", [1])]).sample(0)


class TestRefineValueNormalization:
    """Regression: enum axes must accept journal/cache round-tripped points.

    ``AdaptiveSampler._draw`` dedups points through their serialised
    plain form, and records read back from a journal or cache carry
    plain values too — pre-fix, ``refine`` looked raw values up with
    ``axis.values.index(value)`` and raised ``ValueError`` for any enum
    axis scored from a round-tripped point.
    """

    def _enum_space(self):
        import enum

        class Mode(enum.Enum):
            STT = "stt"
            SOT = "sot"
            VG = "vg"

        return Mode, ParameterSpace([("mode", list(Mode))])

    def test_plain_enum_values_resolve_on_enum_axis(self):
        import json

        from repro.dse import canonical_json

        Mode, space = self._enum_space()
        # A scored point as it comes back from canonical_json round-trip
        # (journal meta, cache records): enum collapsed to its value.
        point = json.loads(canonical_json({"mode": Mode.SOT.value}))
        refined = space.refine([(point, 0.0)], keep=1.0, margin=0)
        assert [a.values for a in refined.axes] == [(Mode.SOT,)]

    def test_raw_enum_values_still_resolve(self):
        Mode, space = self._enum_space()
        refined = space.refine([({"mode": Mode.VG}, 0.0)], keep=1.0, margin=0)
        assert [a.values for a in refined.axes] == [(Mode.VG,)]

    def test_unknown_value_still_rejected(self):
        Mode, space = self._enum_space()
        with pytest.raises(ValueError, match="not on axis"):
            space.refine([({"mode": "reram"}, 0.0)], keep=1.0)
