"""Round-trip tests for the stable to_dict()/from_dict() serialisations."""

import json

import pytest

from repro.archsim.cpu import BIG_CORE_45NM, CoreModel
from repro.archsim.memtech import MemoryTechnology, STT_L2_45NM
from repro.archsim.soc import SoCConfig
from repro.archsim.workloads import PARSEC_KERNELS, WorkloadDescriptor
from repro.nvsim.config import CellKind, MemoryConfig, MemoryType
from repro.vaet.explorer import DesignConstraints, DesignPoint


class TestMemoryConfig:
    def test_roundtrip(self):
        config = MemoryConfig(
            rows=2048, cols=512, word_bits=128, banks=2,
            subarray_rows=128, subarray_cols=256,
            memory_type=MemoryType.CACHE, cell=CellKind.SRAM,
        )
        assert MemoryConfig.from_dict(config.to_dict()) == config

    def test_dict_is_json_ready(self):
        text = json.dumps(MemoryConfig().to_dict())
        assert MemoryConfig.from_dict(json.loads(text)) == MemoryConfig()

    def test_unknown_key_rejected(self):
        with pytest.raises(ValueError):
            MemoryConfig.from_dict({"rows": 1024, "colums": 1024})

    def test_bad_enum_value_rejected(self):
        data = MemoryConfig().to_dict()
        data["cell"] = "reram"
        with pytest.raises(ValueError):
            MemoryConfig.from_dict(data)

    def test_validation_still_applies(self):
        data = MemoryConfig().to_dict()
        data["rows"] = 100  # not a power of two
        with pytest.raises(ValueError):
            MemoryConfig.from_dict(data)


class TestSoCConfig:
    def test_roundtrip_default_platform(self):
        soc = SoCConfig.full_sram()
        assert SoCConfig.from_dict(soc.to_dict()) == soc

    def test_roundtrip_through_json(self):
        soc = SoCConfig.full_sram()
        rebuilt = SoCConfig.from_dict(json.loads(json.dumps(soc.to_dict())))
        assert rebuilt == soc

    def test_roundtrip_modified_cluster(self):
        soc = SoCConfig.full_sram()
        soc = type(soc)(
            big=soc.big.with_l2(8.0, STT_L2_45NM),
            little=soc.little,
            dram=soc.dram,
        )
        assert SoCConfig.from_dict(soc.to_dict()) == soc

    def test_unknown_key_rejected(self):
        data = SoCConfig.full_sram().to_dict()
        data["gpu"] = {}
        with pytest.raises(ValueError):
            SoCConfig.from_dict(data)

    def test_nested_unknown_key_rejected(self):
        data = SoCConfig.full_sram().to_dict()
        data["big"]["turbo"] = True
        with pytest.raises(ValueError):
            SoCConfig.from_dict(data)


class TestSmallRecords:
    def test_memory_technology_roundtrip(self):
        assert MemoryTechnology.from_dict(STT_L2_45NM.to_dict()) == STT_L2_45NM

    def test_core_model_roundtrip(self):
        assert CoreModel.from_dict(BIG_CORE_45NM.to_dict()) == BIG_CORE_45NM

    def test_workload_roundtrip(self):
        workload = PARSEC_KERNELS["canneal"]
        assert WorkloadDescriptor.from_dict(workload.to_dict()) == workload

    def test_design_constraints_roundtrip(self):
        constraints = DesignConstraints(wer_target=1e-12, max_ecc_bits=2)
        assert DesignConstraints.from_dict(constraints.to_dict()) == constraints

    def test_design_constraints_unknown_key(self):
        with pytest.raises(ValueError):
            DesignConstraints.from_dict({"wer": 1e-9})

    def test_design_point_roundtrip(self):
        point = DesignPoint(
            config=MemoryConfig(),
            ecc_bits=1,
            write_latency=2e-8,
            read_latency=3e-9,
            write_energy=6e-10,
            read_energy=1e-10,
            area=1e-6,
            read_disturb_ok=True,
        )
        rebuilt = DesignPoint.from_dict(json.loads(json.dumps(point.to_dict())))
        assert rebuilt == point
