"""Benchmark the repro.dse campaign engine: wall-clock + cache hit rate.

The fast smoke path (default) runs a 24-point memory campaign cold and
warm, asserting the warm-cache replay is >= 5x faster with identical
records.  The slow path scales the same shape to the 216-point grid of
``examples/dse_campaign.py``.  Both record a JSON artefact with
wall-clocks and cache statistics under benchmarks/output/.

Runs two ways:

* under pytest (the benchmark fixtures), as part of the full suite;
* as a plain script for CI artefact capture — no pytest needed::

      PYTHONPATH=src python benchmarks/bench_dse.py --smoke
      PYTHONPATH=src python benchmarks/bench_dse.py --full

``REPRO_DSE_WORKERS`` bounds the worker pool in both modes (CI runners
set it to the vCPU count for deterministic pool sizes).
"""

import argparse
import json
import os
import sys
import tempfile

try:
    import pytest
except ImportError:  # script mode works without pytest installed
    pytest = None

sys.path.insert(0, os.path.dirname(__file__))
from artifacts import save_artifact  # noqa: E402

from repro.dse import ParameterSpace, default_workers, explore_memory  # noqa: E402


def _campaign(space, cache_dir, **settings):
    cold = explore_memory(space, cache_dir=str(cache_dir), **settings)
    warm = explore_memory(space, cache_dir=str(cache_dir), **settings)
    return cold, warm


def smoke_space() -> ParameterSpace:
    """24 points: shape x word x reliability x node."""
    space = ParameterSpace()
    space.add("subarray_rows", [128, 256, 512])
    space.add("word_bits", [128, 256])
    space.add("wer_target", [1e-9, 1e-12])
    space.add("node_nm", [45, 65])
    return space


def full_space() -> ParameterSpace:
    """The 216-point grid of examples/dse_campaign.py."""
    space = ParameterSpace()
    space.add("subarray_rows", [128, 256, 512])
    space.add("subarray_cols", [128, 256, 512])
    space.add("word_bits", [128, 256])
    space.add("wer_target", [1e-9, 1e-12, 1e-15])
    space.add("max_ecc_bits", [2, 3])
    space.add("node_nm", [45, 65])
    return space


SMOKE_SETTINGS = dict(num_words=200, error_population=10_000)
FULL_SETTINGS = dict(num_words=400, error_population=30_000)

if pytest is not None:
    _slow = pytest.mark.slow
else:
    def _slow(fn):
        return fn


def _check_and_save(name, space, cold, warm):
    assert warm.cache_hits == len(warm.outcomes) - len(warm.errors())
    assert cold.records() == warm.records()
    speedup = cold.elapsed / max(warm.elapsed, 1e-9)
    assert speedup >= 5.0, "warm cache replay only %.1fx faster" % speedup
    summary = {
        "points": space.size,
        "cold_wall_s": cold.elapsed,
        "warm_wall_s": warm.elapsed,
        "warm_speedup": speedup,
        "warm_cache_hit_rate": warm.cache_stats["hit_rate"],
        "feasible": len(cold.records()),
        "errors": len(cold.errors()),
        "pareto_size": len(cold.pareto()),
    }
    save_artifact(name, json.dumps(summary, indent=2))
    return summary


def test_dse_campaign_smoke(benchmark, tmp_path):
    """Fast tier-1 path: 24 points, reduced Monte Carlo effort."""
    space = smoke_space()
    assert space.size == 24

    def compute():
        return _campaign(space, tmp_path / "smoke", **SMOKE_SETTINGS)

    cold, warm = benchmark.pedantic(compute, rounds=1, iterations=1)
    _check_and_save("dse_campaign_smoke.json", space, cold, warm)


@_slow
def test_dse_campaign_full(benchmark, tmp_path):
    """The 200+-point campaign of the acceptance criteria."""
    space = full_space()
    assert space.size == 216

    def compute():
        return _campaign(space, tmp_path / "full", **FULL_SETTINGS)

    cold, warm = benchmark.pedantic(compute, rounds=1, iterations=1)
    summary = _check_and_save("dse_campaign_full.json", space, cold, warm)
    assert summary["points"] >= 200


def main(argv=None) -> int:
    """Script mode: run the smoke or full campaign, save the artefact."""
    parser = argparse.ArgumentParser(
        description="repro.dse campaign benchmark (JSON artefact capture)."
    )
    mode = parser.add_mutually_exclusive_group()
    mode.add_argument(
        "--smoke", action="store_true",
        help="24-point campaign, reduced Monte Carlo effort (default)",
    )
    mode.add_argument(
        "--full", action="store_true", help="216-point campaign"
    )
    args = parser.parse_args(argv)

    if args.full:
        name, space, settings = "dse_campaign_full.json", full_space(), FULL_SETTINGS
    else:
        name, space, settings = (
            "dse_campaign_smoke.json", smoke_space(), SMOKE_SETTINGS,
        )
    print(
        "campaign: %d points, %d worker(s) (%s)"
        % (
            space.size,
            default_workers(),
            "REPRO_DSE_WORKERS" if os.environ.get("REPRO_DSE_WORKERS")
            else "cpu count",
        )
    )
    with tempfile.TemporaryDirectory(prefix="bench-dse-") as cache_dir:
        cold, warm = _campaign(space, cache_dir, **settings)
    summary = _check_and_save(name, space, cold, warm)
    print(json.dumps(summary, indent=2))
    return 0


if __name__ == "__main__":
    sys.exit(main())
