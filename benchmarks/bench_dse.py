"""Benchmark the repro.dse campaign engine: wall-clock + cache hit rate.

The fast smoke path (default) runs a 24-point memory campaign cold and
warm, asserting the warm-cache replay is >= 5x faster with identical
records, then measures **journal-append throughput and resume latency**
at 10^4 synthetic points — demonstrating the JSONL journal's O(1)
per-point appends against the legacy whole-file-rewrite (O(n) per
point, O(n^2) per campaign).  The slow path scales the campaign to the
216-point grid of ``examples/dse_campaign.py``.  Everything records a
JSON artefact under benchmarks/output/.

Runs two ways:

* under pytest (the benchmark fixtures), as part of the full suite;
* as a plain script for CI artefact capture — no pytest needed::

      PYTHONPATH=src python benchmarks/bench_dse.py --smoke
      PYTHONPATH=src python benchmarks/bench_dse.py --full
      PYTHONPATH=src python benchmarks/bench_dse.py --snapshot BENCH_dse.json

The ``--snapshot`` mode combines journal throughput, per-event
lease-fold cost (watermark vs whole-history replay), the analytics
report-build fold, the four-way executor comparison and the
scalar-vs-vector evaluator timing into one JSON document — ``BENCH_dse.json`` at the repo root is such a
snapshot, and ``benchmarks/compare_bench.py`` **gates CI** on it: a
>30% wrong-direction drift in any tracked metric fails the build
(``REPRO_BENCH_NO_GATE=1`` downgrades the gate to a report).

``REPRO_DSE_WORKERS`` bounds the worker pool in both modes (CI runners
set it to the vCPU count for deterministic pool sizes).
"""

import argparse
import json
import os
import statistics
import sys
import tempfile
import time

try:
    import pytest
except ImportError:  # script mode works without pytest installed
    pytest = None

sys.path.insert(0, os.path.dirname(__file__))
from artifacts import save_artifact  # noqa: E402

from repro.dse import (  # noqa: E402
    SELFTEST_TARGET,
    CampaignRunner,
    CampaignState,
    Job,
    JobResult,
    LeaseTable,
    NetworkExecutor,
    ParameterSpace,
    ProcessPoolExecutor,
    ResultCache,
    SerialExecutor,
    WorkerPullExecutor,
    WorkQueue,
    campaign_key,
    default_workers,
    explore_memory,
)
from repro.dse.executors import read_lease_events  # noqa: E402


def _campaign(space, cache_dir, **settings):
    cold = explore_memory(space, cache_dir=str(cache_dir), **settings)
    warm = explore_memory(space, cache_dir=str(cache_dir), **settings)
    return cold, warm


def smoke_space() -> ParameterSpace:
    """24 points: shape x word x reliability x node."""
    space = ParameterSpace()
    space.add("subarray_rows", [128, 256, 512])
    space.add("word_bits", [128, 256])
    space.add("wer_target", [1e-9, 1e-12])
    space.add("node_nm", [45, 65])
    return space


def full_space() -> ParameterSpace:
    """The 216-point grid of examples/dse_campaign.py."""
    space = ParameterSpace()
    space.add("subarray_rows", [128, 256, 512])
    space.add("subarray_cols", [128, 256, 512])
    space.add("word_bits", [128, 256])
    space.add("wer_target", [1e-9, 1e-12, 1e-15])
    space.add("max_ecc_bits", [2, 3])
    space.add("node_nm", [45, 65])
    return space


SMOKE_SETTINGS = dict(num_words=200, error_population=10_000)
FULL_SETTINGS = dict(num_words=400, error_population=30_000)

if pytest is not None:
    _slow = pytest.mark.slow
    # Every test in this module is a benchmark: ``pytest -m bench``
    # selects exactly these, ``-m "not bench"`` keeps the tiers lean.
    pytestmark = pytest.mark.bench
else:
    def _slow(fn):
        return fn


def _check_and_save(name, space, cold, warm):
    assert warm.cache_hits == len(warm.outcomes) - len(warm.errors())
    assert cold.records() == warm.records()
    speedup = cold.elapsed / max(warm.elapsed, 1e-9)
    assert speedup >= 5.0, "warm cache replay only %.1fx faster" % speedup
    summary = {
        "points": space.size,
        "cold_wall_s": cold.elapsed,
        "warm_wall_s": warm.elapsed,
        "warm_speedup": speedup,
        "warm_cache_hit_rate": warm.cache_stats["hit_rate"],
        "feasible": len(cold.records()),
        "errors": len(cold.errors()),
        "pareto_size": len(cold.pareto()),
    }
    save_artifact(name, json.dumps(summary, indent=2))
    return summary


# -- journal throughput --------------------------------------------------


def _decile_medians(samples):
    """Median per-point seconds over the first and last 10% of samples."""
    window = max(1, len(samples) // 10)
    return statistics.median(samples[:window]), statistics.median(samples[-window:])


def _legacy_rewrite(path, payload):
    """The PR-2 journal write, reproduced byte-for-byte for comparison:
    re-dump the *entire* completed map atomically on every point."""
    directory = os.path.dirname(path) or "."
    fd, tmp = tempfile.mkstemp(dir=directory, suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as handle:
            json.dump(payload, handle)
        os.replace(tmp, path)
    finally:
        if os.path.exists(tmp):
            os.unlink(tmp)


def journal_bench(points=10_000, legacy_points=1_000):
    """Append-throughput + resume-latency comparison at synthetic scale.

    Returns a JSON-ready summary.  The key number is *flatness*: the
    ratio of the last-decile to first-decile median per-point journal
    time.  The JSONL journal stays near 1 (O(1) appends, compaction
    included); the legacy rewrite grows with the number of points
    already journaled.
    """
    key = campaign_key({"kind": "journal-bench", "points": points})
    jobs = [Job("bench-journal", {"i": i}) for i in range(points)]

    with tempfile.TemporaryDirectory(prefix="bench-journal-") as workdir:
        path = os.path.join(workdir, "journal.jsonl")
        state = CampaignState.open(path, key, total=points)
        jsonl_times = []
        for job in jobs:
            outcome = JobResult(job=job, ok=True, result=None, elapsed=1e-3)
            tick = time.perf_counter()
            state.record(outcome)
            jsonl_times.append(time.perf_counter() - tick)
        state.close()

        tick = time.perf_counter()
        resumed = CampaignState.load(path)
        resume_load_s = time.perf_counter() - tick
        assert resumed.done == points

        legacy = os.path.join(workdir, "checkpoint.json")
        completed = {}
        legacy_times = []
        for job in jobs[:legacy_points]:
            completed[job.key] = {"ok": True, "error": None, "elapsed": 1e-3}
            payload = {
                "version": 1, "campaign_key": key, "total": points,
                "meta": {}, "created": 0.0, "updated": 0.0,
                "completed": completed,
            }
            tick = time.perf_counter()
            _legacy_rewrite(legacy, payload)
            legacy_times.append(time.perf_counter() - tick)

    jsonl_first, jsonl_last = _decile_medians(jsonl_times)
    legacy_first, legacy_last = _decile_medians(legacy_times)
    return {
        "points": points,
        "jsonl_total_s": sum(jsonl_times),
        "jsonl_us_per_point_first_decile": jsonl_first * 1e6,
        "jsonl_us_per_point_last_decile": jsonl_last * 1e6,
        "jsonl_flatness": jsonl_last / jsonl_first,
        "resume_load_s": resume_load_s,
        "legacy_points": legacy_points,
        "legacy_total_s": sum(legacy_times),
        "legacy_us_per_point_first_decile": legacy_first * 1e6,
        "legacy_us_per_point_last_decile": legacy_last * 1e6,
        "legacy_growth": legacy_last / legacy_first,
        "jsonl_speedup_at_tail": legacy_last / jsonl_last,
    }


def _check_and_save_journal(name, summary):
    # Near-flat JSONL appends vs a legacy cost that grows with journal
    # size: generous bounds so CI noise cannot flake the assertion.
    assert summary["jsonl_flatness"] < 10.0, (
        "JSONL append cost grew %.1fx across the campaign"
        % summary["jsonl_flatness"]
    )
    assert summary["legacy_growth"] > summary["jsonl_flatness"]
    assert summary["legacy_growth"] > 3.0
    save_artifact(name, json.dumps(summary, indent=2))
    return summary


def test_journal_append_throughput(tmp_path):
    """Fast tier-1 path: O(1) appends visible even at reduced scale."""
    summary = journal_bench(points=2_000, legacy_points=400)
    _check_and_save_journal("dse_journal_bench.json", summary)


@_slow
def test_journal_append_throughput_full():
    """The 10^4-point scale of the acceptance criteria."""
    summary = journal_bench(points=10_000, legacy_points=1_000)
    _check_and_save_journal("dse_journal_bench.json", summary)
    assert summary["points"] >= 10_000


# -- lease-fold cost -----------------------------------------------------


def lease_fold_bench(events=10_000, legacy_folds=50):
    """Per-event lease-fold cost as a claim journal grows.

    After every appended claim event the coordinator re-folds the lease
    journals (it does this at least once per point).  The applied
    watermark makes that fold incremental — only the journal's new tail
    is parsed and applied — so per-event cost stays flat no matter how
    long the campaign has been running.  The legacy comparison replays
    the *whole* journal through :meth:`LeaseTable.replay` each time,
    which is the pre-watermark behaviour: O(journal length) per fold.
    """
    summary = {"events": events, "legacy_folds": legacy_folds}

    with tempfile.TemporaryDirectory(prefix="bench-fold-") as workdir:
        queue = WorkQueue(workdir)
        queue.ensure()
        path = queue.lease_path("bench")
        watermark_times = []
        with open(path, "a", encoding="utf-8") as journal:
            for i in range(events):
                journal.write(json.dumps({
                    "event": "claim", "task": "task-%d" % i,
                    "worker": "bench", "ttl": 3600.0,
                    "t": float(i), "seq": i,
                }) + "\n")
                journal.flush()
                tick = time.perf_counter()
                queue.lease_table()
                watermark_times.append(time.perf_counter() - tick)
        assert queue.fold_stats["full_refolds"] == 0, (
            "synthetic in-order tail triggered %d full refolds"
            % queue.fold_stats["full_refolds"]
        )
        assert queue.fold_stats["events_folded"] == events
        assert len(queue.lease_table().leases) == events

        # A fresh coordinator folding the whole history once (resume).
        cold = WorkQueue(workdir)
        tick = time.perf_counter()
        cold_table = cold.lease_table()
        summary["cold_fold_s"] = time.perf_counter() - tick
        assert len(cold_table.leases) == events

        legacy_times = []
        for _ in range(legacy_folds):
            tick = time.perf_counter()
            LeaseTable.replay(read_lease_events(path))
            legacy_times.append(time.perf_counter() - tick)

    first, last = _decile_medians(watermark_times)
    summary.update({
        "watermark_total_s": sum(watermark_times),
        "watermark_us_per_event_first_decile": first * 1e6,
        "watermark_us_per_event_last_decile": last * 1e6,
        "watermark_flatness": last / first,
        "full_refolds": 0,
    })
    # The legacy loop replays a fully grown journal, so instead of a
    # growth curve we report its (flat, large) per-fold cost against
    # the watermark's per-event cost at the same journal size.
    legacy_per_fold = statistics.median(legacy_times)
    summary.update({
        "legacy_s_per_fold": legacy_per_fold,
        "watermark_speedup_at_tail": legacy_per_fold / max(last, 1e-9),
    })
    return summary


def _check_and_save_lease_fold(name, summary):
    # Flat incremental folds (generous bound: CI noise must not flake
    # it) and a whole-history replay that is orders of magnitude more
    # expensive per fold at the same journal length.
    assert summary["watermark_flatness"] < 10.0, (
        "watermark fold cost grew %.1fx across the campaign"
        % summary["watermark_flatness"]
    )
    assert summary["full_refolds"] == 0
    assert summary["watermark_speedup_at_tail"] > 10.0, (
        "whole-history replay only %.1fx the incremental fold"
        % summary["watermark_speedup_at_tail"]
    )
    save_artifact(name, json.dumps(summary, indent=2))
    return summary


def test_lease_fold_flatness():
    """Fast tier-1 path: flat incremental folds at reduced scale."""
    summary = lease_fold_bench(events=2_000, legacy_folds=50)
    _check_and_save_lease_fold("dse_lease_fold_bench.json", summary)


@_slow
def test_lease_fold_flatness_full():
    """The 10^4-event scale of the acceptance criteria."""
    summary = lease_fold_bench(events=10_000, legacy_folds=50)
    _check_and_save_lease_fold("dse_lease_fold_bench.json", summary)
    assert summary["events"] >= 10_000


# -- analytics report build ----------------------------------------------


def analytics_bench(points=5_000, workers=2):
    """Wall-clock to fold a synthetic campaign into a CampaignReport.

    Synthesises a campaign directory the way a real run writes one —
    ``started`` + ``done`` journal events through ``CampaignState``
    (compaction disabled so the full event tail survives), one cache
    row per point feeding the Pareto join, and per-worker claim
    journals — then times one :func:`repro.dse.analytics.build_report`
    over it.  At ``points=5_000`` the journal holds 10^4+ events; the
    report must fold them (latency percentiles, worker utilization,
    rates, Pareto evolution) in under a second, or ``analyze`` stops
    being a thing you casually point at a live campaign.
    """
    from repro.dse.analytics import build_report

    summary = {"points": points, "workers": workers}
    with tempfile.TemporaryDirectory(prefix="bench-analytics-") as camp:
        key = campaign_key({"kind": "analytics-bench", "points": points})
        state = CampaignState.open(
            os.path.join(camp, "journal.jsonl"), key, total=points,
            meta={"kind": "selftest",
                  "objectives": [["lat", "min"], ["energy", "min"]]},
            compact_threshold=0,
        )
        cache = ResultCache(os.path.join(camp, "cache"))
        jobs = [Job("bench-analytics", {"i": i}) for i in range(points)]
        state.record_started([job.key for job in jobs])
        for i, job in enumerate(jobs):
            # Coarse pseudo-random objectives: plenty of front churn.
            cache.put(job.key, {
                "target": job.target,
                "spec": dict(job.spec),
                "result": {"lat": float((i * 37) % 101),
                           "energy": float((i * 53) % 97)},
                "elapsed": 1e-3,
            })
            state.record(JobResult(
                job=job, ok=True, result=None, elapsed=1e-3,
            ))
        state.close()

        leases_dir = os.path.join(camp, "work", "leases")
        os.makedirs(leases_dir)
        for w in range(workers):
            path = os.path.join(leases_dir, "w%d.jsonl" % w)
            with open(path, "w", encoding="utf-8") as journal:
                seq = 0
                for i in range(w, points, workers):
                    for offset, kind in ((0.0, "claim"), (0.5, "done")):
                        seq += 1
                        journal.write(json.dumps({
                            "event": kind, "task": "%s-0" % jobs[i].key,
                            "worker": "w%d" % w, "ttl": 60.0,
                            "t": float(i) + offset, "seq": seq,
                        }) + "\n")

        tick = time.perf_counter()
        report = build_report(camp)
        build_s = time.perf_counter() - tick

        assert report.events > 2 * points  # begin + started + done each
        assert report.status["done"] == points
        assert report.latency is not None
        assert report.latency["count"] == points
        assert len(report.workers) == workers
        assert report.pareto and report.pareto[-1].completed == points
        summary.update({
            "events": report.events,
            "cache_rows": points,
            "report_build_s": build_s,
            "events_per_s": report.events / max(build_s, 1e-9),
            "pareto_samples": len(report.pareto),
        })
    return summary


def _check_and_save_analytics(name, summary):
    # The read-side acceptance bar: a 10^4-event report folds in
    # well under a second (sub-linear headroom for CI noise).
    assert summary["report_build_s"] < 1.0, (
        "report build took %.2fs over %d events"
        % (summary["report_build_s"], summary["events"])
    )
    save_artifact(name, json.dumps(summary, indent=2))
    return summary


def test_analytics_report_build():
    """Fast tier-1 path: report fold at reduced event scale."""
    summary = analytics_bench(points=1_000)
    _check_and_save_analytics("dse_analytics_bench.json", summary)


@_slow
def test_analytics_report_build_full():
    """The 10^4-event scale of the acceptance criteria."""
    summary = analytics_bench(points=5_000)
    _check_and_save_analytics("dse_analytics_bench.json", summary)
    assert summary["events"] >= 10_000


# -- executor comparison -------------------------------------------------


def executor_bench(points=24, sleep_s=0.05, workers=2):
    """Serial vs pool vs worker-pull vs network wall-clock, same jobs.

    Synthetic sleeping points isolate the executors' dispatch overhead
    from Monte-Carlo noise: with evaluation cost pinned at ``sleep_s``,
    serial wall-clock is ~``points * sleep_s`` and any parallel backend
    divides it by its effective worker count (worker-pull and network
    additionally pay per-process startup once, plus filesystem polling
    or a TCP round-trip per point).
    """
    jobs = [
        Job(SELFTEST_TARGET, {"x": i, "sleep_s": sleep_s}) for i in range(points)
    ]
    summary = {"points": points, "sleep_s": sleep_s, "workers": workers}

    def timed(name, runner):
        tick = time.perf_counter()
        results = runner.run(jobs)
        wall = time.perf_counter() - tick
        assert all(r.ok for r in results), "executor %s failed a point" % name
        summary["%s_wall_s" % name] = wall
        return wall

    serial = timed("serial", CampaignRunner(workers=1, executor=SerialExecutor()))
    pool = timed(
        "pool", CampaignRunner(workers=workers,
                               executor=ProcessPoolExecutor(workers)),
    )
    with tempfile.TemporaryDirectory(prefix="bench-pull-") as campaign_dir:
        executor = WorkerPullExecutor(
            campaign_dir, spawn_workers=workers, lease_ttl=10.0, poll=0.01,
            timeout=300,
        )
        try:
            pull = timed(
                "worker_pull", CampaignRunner(workers=workers, executor=executor)
            )
        finally:
            executor.close()
    with tempfile.TemporaryDirectory(prefix="bench-net-") as campaign_dir:
        executor = NetworkExecutor(
            campaign_dir, spawn_workers=workers, lease_ttl=10.0, poll=0.01,
            timeout=300,
        )
        try:
            network = timed(
                "network", CampaignRunner(workers=workers, executor=executor)
            )
        finally:
            executor.close()
    summary["pool_speedup"] = serial / max(pool, 1e-9)
    summary["worker_pull_speedup"] = serial / max(pull, 1e-9)
    summary["network_speedup"] = serial / max(network, 1e-9)
    return summary


def _check_and_save_executors(name, summary):
    # Sanity only — worker-pull pays interpreter startup for its
    # spawned processes, so absolute speedups are hardware-dependent;
    # the artefact records them, the assertions guard correctness.
    import multiprocessing

    assert summary["serial_wall_s"] >= summary["points"] * summary["sleep_s"]
    # The pool-beats-serial claim only holds where pool startup is
    # cheap (fork) and the workload amortises it (>= 1 s serially);
    # under spawn (macOS/Windows) or at smoke scale it is recorded,
    # not asserted.
    baseline = summary["points"] * summary["sleep_s"]
    if multiprocessing.get_start_method() == "fork" and baseline >= 1.0:
        assert summary["pool_speedup"] > 1.0
    save_artifact(name, json.dumps(summary, indent=2))
    return summary


def test_executor_comparison():
    """Fast tier-1 path: all four executors agree and are measured."""
    summary = executor_bench(points=12, sleep_s=0.02)
    assert "network_wall_s" in summary
    _check_and_save_executors("dse_executor_bench.json", summary)


# -- evaluator fast path -------------------------------------------------


def evaluator_bench(points=4, scalar_points=2,
                    num_words=200, error_population=10_000):
    """Per-point wall-clock of the real memory evaluator, both paths.

    Times :func:`repro.dse.campaign.evaluate_memory_point` on the
    production VAET-STT evaluator with the vectorised kernels (the
    default) and again with ``REPRO_VAET_SCALAR=1`` selecting the
    cell-at-a-time reference implementations.  The scalar side runs
    fewer points — it is the slow path by construction — and medians
    keep single-point noise out of the ratio.
    """
    from repro.dse.campaign import evaluate_memory_point
    from repro.nvsim import MemoryConfig
    from repro.vaet.explorer import DesignConstraints
    from repro.vaet.variation_model import SCALAR_REFERENCE_ENV

    def spec(seed):
        return {
            "node_nm": 45,
            "config": MemoryConfig().to_dict(),
            "constraints": DesignConstraints().to_dict(),
            "num_words": num_words,
            "error_population": error_population,
            "seed": seed,
        }

    def timed(count):
        times = []
        for k in range(count):
            tick = time.perf_counter()
            outcome = evaluate_memory_point(spec(2018 + k), 0)
            times.append(time.perf_counter() - tick)
            assert "feasible" in outcome
        return statistics.median(times)

    saved = os.environ.pop(SCALAR_REFERENCE_ENV, None)
    try:
        vector = timed(points)
        os.environ[SCALAR_REFERENCE_ENV] = "1"
        scalar = timed(scalar_points)
    finally:
        if saved is None:
            os.environ.pop(SCALAR_REFERENCE_ENV, None)
        else:
            os.environ[SCALAR_REFERENCE_ENV] = saved
    return {
        "points": points,
        "scalar_points": scalar_points,
        "num_words": num_words,
        "error_population": error_population,
        "vector_s_per_point": vector,
        "scalar_s_per_point": scalar,
        "vector_speedup": scalar / max(vector, 1e-9),
    }


def _check_and_save_evaluator(name, summary):
    # The tentpole acceptance bar: the vectorised kernels must beat the
    # scalar reference by an order of magnitude on the real evaluator.
    # Measured ~50x on a dev box; 10x leaves headroom for CI noise.
    assert summary["vector_speedup"] >= 10.0, (
        "vector fast path only %.1fx the scalar reference"
        % summary["vector_speedup"]
    )
    save_artifact(name, json.dumps(summary, indent=2))
    return summary


def test_evaluator_fast_path():
    """Fast tier-1 path: vector evaluator >= 10x the scalar reference."""
    summary = evaluator_bench(points=3, scalar_points=2)
    _check_and_save_evaluator("dse_evaluator_bench.json", summary)


# -- chaos guard overhead ------------------------------------------------


def chaos_guard_bench(fires=200_000, evaluator_points=3):
    """Disabled-fault-plane guard cost against a real evaluation.

    Production campaigns pay the chaos hooks' disabled path on every
    seam crossing — one module-global read plus a ``None`` check (see
    :func:`repro.dse.chaos.fire`).  This times that guard directly,
    then expresses a whole point's worth of crossings (generously
    counted) as a percentage of one real memory-evaluator call.
    """
    from repro.dse import chaos
    from repro.dse.campaign import evaluate_memory_point
    from repro.nvsim import MemoryConfig
    from repro.vaet.explorer import DesignConstraints

    assert chaos.active() is None, "chaos must stay disabled in benchmarks"
    tick = time.perf_counter()
    for _ in range(fires):
        chaos.fire("evaluate", target="bench-guard", seed=0)
    guard_s = (time.perf_counter() - tick) / fires

    spec = {
        "node_nm": 45,
        "config": MemoryConfig().to_dict(),
        "constraints": DesignConstraints().to_dict(),
        "num_words": 100,
        "error_population": 5_000,
        "seed": 2018,
    }
    times = []
    for k in range(evaluator_points):
        tick = time.perf_counter()
        outcome = evaluate_memory_point(spec, k)
        times.append(time.perf_counter() - tick)
        assert "feasible" in outcome
    evaluator_s = statistics.median(times)

    # One point crosses the evaluate seam once and the persistence
    # seams (journal append/appended/atomic, cache.put, lease/queue)
    # a handful of times; 8 is a generous over-count.
    hooks_per_point = 8
    return {
        "fires": fires,
        "guard_ns_per_fire": guard_s * 1e9,
        "hooks_per_point": hooks_per_point,
        "evaluator_s_per_point": evaluator_s,
        "chaos_guard_overhead_pct":
            100.0 * guard_s * hooks_per_point / max(evaluator_s, 1e-9),
    }


def _check_and_save_chaos_guard(name, summary):
    # The robustness acceptance bar: a *disabled* fault plane must be
    # free — under 2% of one real evaluation even with every seam
    # crossing over-counted.
    assert summary["chaos_guard_overhead_pct"] < 2.0, (
        "disabled chaos guard costs %.3f%% of an evaluation"
        % summary["chaos_guard_overhead_pct"]
    )
    save_artifact(name, json.dumps(summary, indent=2))
    return summary


def test_chaos_guard_overhead():
    """Fast tier-1 path: the disabled fault plane costs <2% per point."""
    summary = chaos_guard_bench(fires=50_000)
    _check_and_save_chaos_guard("dse_chaos_guard_bench.json", summary)


# -- sampler budget efficiency -------------------------------------------

#: Toy objective for the sampler comparison: a discrete bowl on a
#: side x side grid with its optimum off-centre.  Points are encoded as
#: a single selftest ``x`` so every sampler's evaluations flow through
#: the real job/runner machinery.
SAMPLER_SIDE = 16
SAMPLER_OPTIMUM = (11, 3)
SAMPLER_TARGET = 1.0  # within one grid step of the optimum


def _sampler_score(px, py):
    dx, dy = px - SAMPLER_OPTIMUM[0], py - SAMPLER_OPTIMUM[1]
    return float(dx * dx + dy * dy)


def sampler_bench(batch=8, rounds=8, candidates=256, seed=0,
                  proposal_side=32, proposal_rounds=12):
    """Evaluations-to-target of every sampler, plus proposal throughput.

    All four samplers get the identical budget (``batch * rounds``
    points of the same bowl), scored through ``CampaignRunner`` on the
    selftest evaluator — so the comparison includes the job hashing and
    dispatch each sampler's points really pay.  Grid and LHS are the
    static baselines (scan order / one stratified draw); adaptive and
    surrogate are the model-driven samplers.  Every quantity is seeded
    and deterministic except the proposal throughput, which times the
    surrogate's model/rank loop on a free evaluator over a
    ``proposal_side``-squared space.
    """
    from repro.dse import AdaptiveSampler, SurrogateSampler, evaluations_to_target

    space = ParameterSpace()
    space.add("x", list(range(SAMPLER_SIDE)))
    space.add("y", list(range(SAMPLER_SIDE)))
    runner = CampaignRunner(workers=1)
    budget = batch * rounds

    def score_points(points):
        jobs = [
            Job(SELFTEST_TARGET, {"x": p["x"] * SAMPLER_SIDE + p["y"]})
            for p in points
        ]
        scores = []
        for outcome in runner.run(jobs):
            assert outcome.ok
            encoded = outcome.result["value"] // 2  # selftest returns 2*x
            px, py = divmod(encoded, SAMPLER_SIDE)
            scores.append(_sampler_score(px, py))
        return scores

    def static_evals(points):
        for spent, score in enumerate(score_points(points), start=1):
            if score <= SAMPLER_TARGET:
                return spent
        return None

    missed = budget + 1  # sentinel: target not reached within budget
    grid_evals = static_evals(list(space.grid())[:budget])
    lhs_evals = static_evals(space.sample(budget, seed=seed))
    adaptive_trace = AdaptiveSampler(
        space, batch=batch, rounds=rounds, seed=seed
    ).run(score_points)
    surrogate_trace = SurrogateSampler(
        space, batch=batch, rounds=rounds, candidates=candidates, seed=seed
    ).run(score_points)

    # Proposal throughput: a free evaluator isolates the model fit and
    # candidate ranking from evaluation cost.
    big = ParameterSpace()
    big.add("x", list(range(proposal_side)))
    big.add("y", list(range(proposal_side)))

    def free_evaluate(points):
        return [_sampler_score(p["x"], p["y"]) for p in points]

    proposer = SurrogateSampler(
        big, batch=16, rounds=proposal_rounds, candidates=1024, seed=seed
    )
    tick = time.perf_counter()
    proposal_trace = proposer.run(free_evaluate)
    proposal_wall = time.perf_counter() - tick

    return {
        "side": SAMPLER_SIDE,
        "budget": budget,
        "target": SAMPLER_TARGET,
        "grid_evals_to_target": grid_evals or missed,
        "lhs_evals_to_target": lhs_evals or missed,
        "adaptive_evals_to_target":
            evaluations_to_target(adaptive_trace, SAMPLER_TARGET) or missed,
        "surrogate_evals_to_target":
            evaluations_to_target(surrogate_trace, SAMPLER_TARGET) or missed,
        "surrogate_best_score": surrogate_trace.best_score,
        "proposal_points": proposal_trace.evaluations,
        "proposal_wall_s": proposal_wall,
        "proposals_per_s": proposal_trace.evaluations / max(proposal_wall, 1e-9),
    }


def _check_and_save_sampler(name, summary):
    # The tentpole acceptance bar: the surrogate reaches the target
    # band within budget, in fewer evaluations than blind LHS.
    assert summary["surrogate_evals_to_target"] <= summary["budget"]
    assert (
        summary["surrogate_evals_to_target"] < summary["lhs_evals_to_target"]
    ), "surrogate needed %d evaluations, LHS %d" % (
        summary["surrogate_evals_to_target"], summary["lhs_evals_to_target"]
    )
    save_artifact(name, json.dumps(summary, indent=2))
    return summary


def test_sampler_efficiency():
    """Fast tier-1 path: surrogate beats LHS to the target band."""
    summary = sampler_bench()
    _check_and_save_sampler("dse_sampler_bench.json", summary)


def test_dse_campaign_smoke(benchmark, tmp_path):
    """Fast tier-1 path: 24 points, reduced Monte Carlo effort."""
    space = smoke_space()
    assert space.size == 24

    def compute():
        return _campaign(space, tmp_path / "smoke", **SMOKE_SETTINGS)

    cold, warm = benchmark.pedantic(compute, rounds=1, iterations=1)
    _check_and_save("dse_campaign_smoke.json", space, cold, warm)


@_slow
def test_dse_campaign_full(benchmark, tmp_path):
    """The 200+-point campaign of the acceptance criteria."""
    space = full_space()
    assert space.size == 216

    def compute():
        return _campaign(space, tmp_path / "full", **FULL_SETTINGS)

    cold, warm = benchmark.pedantic(compute, rounds=1, iterations=1)
    summary = _check_and_save("dse_campaign_full.json", space, cold, warm)
    assert summary["points"] >= 200


def main(argv=None) -> int:
    """Script mode: run the smoke or full campaign, save the artefact."""
    parser = argparse.ArgumentParser(
        description="repro.dse campaign benchmark (JSON artefact capture)."
    )
    mode = parser.add_mutually_exclusive_group()
    mode.add_argument(
        "--smoke", action="store_true",
        help="24-point campaign, reduced Monte Carlo effort (default)",
    )
    mode.add_argument(
        "--full", action="store_true", help="216-point campaign"
    )
    mode.add_argument(
        "--executors", action="store_true",
        help="executor comparison only (serial vs pool vs 2-worker "
             "worker-pull vs network wall-clock on synthetic points)",
    )
    mode.add_argument(
        "--evaluator", action="store_true",
        help="evaluator fast-path comparison only (vectorised vs "
             "REPRO_VAET_SCALAR=1 per-point wall-clock on the real "
             "memory evaluator)",
    )
    mode.add_argument(
        "--samplers", action="store_true",
        help="sampler comparison only (grid/LHS/adaptive/surrogate "
             "evaluations-to-target on the selftest bowl, plus "
             "surrogate proposal throughput)",
    )
    mode.add_argument(
        "--analytics", action="store_true",
        help="analytics report-build only (one build_report fold over "
             "a synthetic 10^4-event campaign directory)",
    )
    mode.add_argument(
        "--snapshot", metavar="PATH", nargs="?", const="BENCH_dse.json",
        help="write the combined perf snapshot (journal throughput, "
             "lease-fold cost, executor comparison, evaluator fast "
             "path, sampler efficiency) to PATH (default: "
             "BENCH_dse.json)",
    )
    args = parser.parse_args(argv)

    if args.samplers:
        print("samplers: grid vs LHS vs adaptive vs surrogate on the "
              "%dx%d selftest bowl" % (SAMPLER_SIDE, SAMPLER_SIDE))
        summary = _check_and_save_sampler(
            "dse_sampler_bench.json", sampler_bench()
        )
        print(json.dumps(summary, indent=2))
        return 0

    if args.analytics:
        print("analytics: one build_report fold over a synthetic "
              "10^4-event campaign directory")
        summary = _check_and_save_analytics(
            "dse_analytics_bench.json", analytics_bench(points=5_000)
        )
        print(json.dumps(summary, indent=2))
        return 0

    if args.evaluator:
        print("evaluator: vectorised vs scalar-reference per-point "
              "wall-clock on the real memory evaluator")
        summary = _check_and_save_evaluator(
            "dse_evaluator_bench.json",
            evaluator_bench(points=4, scalar_points=2),
        )
        print(json.dumps(summary, indent=2))
        return 0

    if args.executors:
        print("executors: 24 sleeping points, "
              "serial vs pool vs worker-pull vs network")
        summary = _check_and_save_executors(
            "dse_executor_bench.json",
            executor_bench(points=24, sleep_s=0.05, workers=2),
        )
        print(json.dumps(summary, indent=2))
        return 0

    if args.snapshot:
        print("snapshot: journal @ 10^4 points, lease fold @ 10^4 events, "
              "analytics report @ 10^4 events, executors on 24 sleeping "
              "points, evaluator fast path, sampler efficiency, chaos "
              "guard overhead")
        snapshot = {
            "analytics": _check_and_save_analytics(
                "dse_analytics_bench.json", analytics_bench(points=5_000)
            ),
            "sampler": _check_and_save_sampler(
                "dse_sampler_bench.json", sampler_bench()
            ),
            "journal": _check_and_save_journal(
                "dse_journal_bench.json",
                journal_bench(points=10_000, legacy_points=1_000),
            ),
            "lease_fold": _check_and_save_lease_fold(
                "dse_lease_fold_bench.json",
                lease_fold_bench(events=10_000, legacy_folds=50),
            ),
            "executors": _check_and_save_executors(
                "dse_executor_bench.json",
                executor_bench(points=24, sleep_s=0.05, workers=2),
            ),
            "evaluator": _check_and_save_evaluator(
                "dse_evaluator_bench.json",
                evaluator_bench(points=4, scalar_points=2),
            ),
            "chaos_guard": _check_and_save_chaos_guard(
                "dse_chaos_guard_bench.json", chaos_guard_bench()
            ),
        }
        with open(args.snapshot, "w", encoding="utf-8") as handle:
            json.dump(snapshot, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print("snapshot written to %s" % args.snapshot)
        return 0

    if args.full:
        name, space, settings = "dse_campaign_full.json", full_space(), FULL_SETTINGS
    else:
        name, space, settings = (
            "dse_campaign_smoke.json", smoke_space(), SMOKE_SETTINGS,
        )
    print(
        "campaign: %d points, %d worker(s) (%s)"
        % (
            space.size,
            default_workers(),
            "REPRO_DSE_WORKERS" if os.environ.get("REPRO_DSE_WORKERS")
            else "cpu count",
        )
    )
    with tempfile.TemporaryDirectory(prefix="bench-dse-") as cache_dir:
        cold, warm = _campaign(space, cache_dir, **settings)
    summary = _check_and_save(name, space, cold, warm)
    print(json.dumps(summary, indent=2))

    print("journal: %d synthetic points (JSONL) vs %d (legacy rewrite)"
          % (10_000, 1_000))
    journal_summary = _check_and_save_journal(
        "dse_journal_bench.json",
        journal_bench(points=10_000, legacy_points=1_000),
    )
    print(json.dumps(journal_summary, indent=2))
    return 0


if __name__ == "__main__":
    sys.exit(main())
