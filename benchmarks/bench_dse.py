"""Benchmark the repro.dse campaign engine: wall-clock + cache hit rate.

The fast smoke path (default) runs a 24-point memory campaign cold and
warm, asserting the warm-cache replay is >= 5x faster with identical
records.  The slow path scales the same shape to the 216-point grid of
``examples/dse_campaign.py``.  Both record a JSON artefact with
wall-clocks and cache statistics under benchmarks/output/.
"""

import json

import pytest
from conftest import save_artifact

from repro.dse import ParameterSpace, explore_memory


def _campaign(space, cache_dir, **settings):
    cold = explore_memory(space, cache_dir=str(cache_dir), **settings)
    warm = explore_memory(space, cache_dir=str(cache_dir), **settings)
    return cold, warm


def _check_and_save(name, space, cold, warm):
    assert warm.cache_hits == len(warm.outcomes) - len(warm.errors())
    assert cold.records() == warm.records()
    speedup = cold.elapsed / max(warm.elapsed, 1e-9)
    assert speedup >= 5.0, "warm cache replay only %.1fx faster" % speedup
    summary = {
        "points": space.size,
        "cold_wall_s": cold.elapsed,
        "warm_wall_s": warm.elapsed,
        "warm_speedup": speedup,
        "warm_cache_hit_rate": warm.cache_stats["hit_rate"],
        "feasible": len(cold.records()),
        "errors": len(cold.errors()),
        "pareto_size": len(cold.pareto()),
    }
    save_artifact(name, json.dumps(summary, indent=2))
    return summary


def test_dse_campaign_smoke(benchmark, tmp_path):
    """Fast tier-1 path: 24 points, reduced Monte Carlo effort."""
    space = ParameterSpace()
    space.add("subarray_rows", [128, 256, 512])
    space.add("word_bits", [128, 256])
    space.add("wer_target", [1e-9, 1e-12])
    space.add("node_nm", [45, 65])
    assert space.size == 24

    def compute():
        return _campaign(
            space, tmp_path / "smoke", num_words=200, error_population=10_000
        )

    cold, warm = benchmark.pedantic(compute, rounds=1, iterations=1)
    _check_and_save("dse_campaign_smoke.json", space, cold, warm)


@pytest.mark.slow
def test_dse_campaign_full(benchmark, tmp_path):
    """The 200+-point campaign of the acceptance criteria."""
    space = ParameterSpace()
    space.add("subarray_rows", [128, 256, 512])
    space.add("subarray_cols", [128, 256, 512])
    space.add("word_bits", [128, 256])
    space.add("wer_target", [1e-9, 1e-12, 1e-15])
    space.add("max_ecc_bits", [2, 3])
    space.add("node_nm", [45, 65])
    assert space.size == 216

    def compute():
        return _campaign(
            space, tmp_path / "full", num_words=400, error_population=30_000
        )

    cold, warm = benchmark.pedantic(compute, rounds=1, iterations=1)
    summary = _check_and_save("dse_campaign_full.json", space, cold, warm)
    assert summary["points"] >= 200
