"""Gate CI on a fresh perf snapshot against the committed baseline.

CI runs ``bench_dse.py --snapshot <current>`` and then::

    python benchmarks/compare_bench.py BENCH_dse.json <current>

to compare the committed baseline (``BENCH_dse.json`` at the repo
root) against the run that just happened.  The comparison **gates**:
any gated metric drifting more than 30% in the wrong direction fails
the build with a one-line diff per regression.  Metrics dominated by
shared-runner noise (process-spawn wall-clocks, legacy-replay ratios)
are report-only.

``REPRO_BENCH_NO_GATE=1`` downgrades the gate to a report (exit 0) —
the escape hatch for known-noisy runners and for intentional
re-baselining PRs, which should also refresh the snapshot::

    PYTHONPATH=src python benchmarks/bench_dse.py --snapshot

A metric missing from either file compares as ``n/a`` and never fails
(baselines predating a section stay usable).  Exit status: 0 clean or
gate disabled, 1 on a gated regression, 2 on unreadable input.
"""

import argparse
import json
import os
import sys

#: Wrong-direction drift beyond this fraction fails a gated metric.
TOLERANCE = 0.30

#: (section, metric, direction, gated) — direction "down" means lower
#: is better.  Gated metrics enforce the TOLERANCE; the rest are
#: printed for eyeballing only (executor wall-clocks pay interpreter
#: startup and TCP round-trips, far noisier than 30% across runners).
METRICS = [
    ("journal", "jsonl_us_per_point_last_decile", "down", True),
    ("journal", "jsonl_flatness", "down", True),
    ("journal", "resume_load_s", "down", True),
    ("journal", "jsonl_speedup_at_tail", "up", False),
    # One read-side fold over a 10^4-event campaign directory; the
    # bench asserts < 1 s absolutely, the gate catches slow creep.
    ("analytics", "report_build_s", "down", True),
    ("analytics", "events_per_s", "up", False),
    ("lease_fold", "watermark_us_per_event_last_decile", "down", True),
    ("lease_fold", "watermark_flatness", "down", True),
    ("lease_fold", "watermark_speedup_at_tail", "up", False),
    ("lease_fold", "cold_fold_s", "down", False),
    ("executors", "serial_wall_s", "down", False),
    ("executors", "pool_speedup", "up", False),
    ("executors", "worker_pull_speedup", "up", False),
    ("executors", "network_speedup", "up", False),
    ("evaluator", "vector_s_per_point", "down", True),
    ("evaluator", "vector_speedup", "up", True),
    # Evaluations-to-target are seeded and fully deterministic — any
    # drift is a sampler behaviour change, so the surrogate's is gated.
    ("sampler", "surrogate_evals_to_target", "down", True),
    ("sampler", "lhs_evals_to_target", "down", False),
    ("sampler", "adaptive_evals_to_target", "down", False),
    ("sampler", "grid_evals_to_target", "down", False),
    ("sampler", "proposals_per_s", "up", False),
    # The disabled fault plane's cost on the evaluator path: the bench
    # itself asserts < 2% absolutely; the gate catches slow creep.
    ("chaos_guard", "chaos_guard_overhead_pct", "down", True),
    ("chaos_guard", "guard_ns_per_fire", "down", False),
]


def _load(path):
    try:
        with open(path, "r", encoding="utf-8") as handle:
            return json.load(handle)
    except (OSError, ValueError) as exc:
        sys.stderr.write("cannot read snapshot %s: %s\n" % (path, exc))
        raise SystemExit(2)


def compare(baseline, current, out=sys.stdout):
    """Print the metric table; return one-line reports of gated regressions."""
    regressions = []
    width = max(len("%s.%s" % (s, m)) for s, m, _, _ in METRICS)
    out.write(
        "%-*s %14s %14s %9s\n"
        % (width, "metric", "baseline", "current", "delta")
    )
    for section, metric, direction, gated in METRICS:
        base = baseline.get(section, {}).get(metric)
        cur = current.get(section, {}).get(metric)
        label = "%s.%s" % (section, metric)
        if base is None or cur is None:
            out.write("%-*s %14s %14s %9s\n" % (
                width, label,
                "-" if base is None else "%.4g" % base,
                "-" if cur is None else "%.4g" % cur,
                "n/a",
            ))
            continue
        delta = (cur - base) / base if base else float("inf")
        worse = delta > 0 if direction == "down" else delta < 0
        regressed = gated and worse and abs(delta) > TOLERANCE
        flag = "REGRESSION" if regressed else ("(worse)" if worse else "")
        out.write("%-*s %14.4g %14.4g %+8.1f%% %s\n" % (
            width, label, base, cur, delta * 100.0, flag
        ))
        if regressed:
            regressions.append(
                "REGRESSION %s: %.4g -> %.4g (%+.1f%%, tolerance %.0f%%)"
                % (label, base, cur, delta * 100.0, TOLERANCE * 100.0)
            )
    return regressions


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Gate a perf snapshot against the committed "
                    "baseline (>30%% wrong-direction drift fails; "
                    "REPRO_BENCH_NO_GATE=1 reports only)."
    )
    parser.add_argument("baseline", help="committed snapshot (BENCH_dse.json)")
    parser.add_argument("current", help="snapshot from this run")
    args = parser.parse_args(argv)
    regressions = compare(_load(args.baseline), _load(args.current))
    if not regressions:
        print("\nperf gate: all gated metrics within %.0f%% of baseline"
              % (TOLERANCE * 100.0))
        return 0
    print()
    for line in regressions:
        print(line)
    if os.environ.get("REPRO_BENCH_NO_GATE", "") not in ("", "0"):
        print("perf gate: DISABLED (REPRO_BENCH_NO_GATE set) — "
              "reporting only")
        return 0
    print("perf gate: FAILED — rerun on a quiet machine, or refresh the "
          "baseline via 'bench_dse.py --snapshot' if the change is "
          "intentional (REPRO_BENCH_NO_GATE=1 skips the gate)")
    return 1


if __name__ == "__main__":
    sys.exit(main())
