"""Compare a fresh perf snapshot against the committed baseline.

CI runs ``bench_dse.py --snapshot <current>`` and then::

    python benchmarks/compare_bench.py BENCH_dse.json <current>

to print a metric-by-metric comparison of the committed baseline
(``BENCH_dse.json`` at the repo root) against the run that just
happened.  The comparison is **non-gating** — shared CI runners are
too noisy for hard perf gates; the correctness/flatness assertions
live inside ``bench_dse.py`` itself.  Exit status is 0 whenever both
files parse; 2 on unreadable input.
"""

import argparse
import json
import sys

#: metric -> (section, direction) where direction "down" means lower
#: is better.  Only metrics stable enough to be worth eyeballing.
METRICS = [
    ("journal", "jsonl_us_per_point_last_decile", "down"),
    ("journal", "jsonl_flatness", "down"),
    ("journal", "resume_load_s", "down"),
    ("journal", "jsonl_speedup_at_tail", "up"),
    ("lease_fold", "watermark_us_per_event_last_decile", "down"),
    ("lease_fold", "watermark_flatness", "down"),
    ("lease_fold", "watermark_speedup_at_tail", "up"),
    ("lease_fold", "cold_fold_s", "down"),
    ("executors", "serial_wall_s", "down"),
    ("executors", "pool_speedup", "up"),
    ("executors", "worker_pull_speedup", "up"),
    ("executors", "network_speedup", "up"),
]


def _load(path):
    try:
        with open(path, "r", encoding="utf-8") as handle:
            return json.load(handle)
    except (OSError, ValueError) as exc:
        raise SystemExit("cannot read snapshot %s: %s" % (path, exc))


def compare(baseline, current, out=sys.stdout):
    width = max(len("%s.%s" % (s, m)) for s, m, _ in METRICS)
    out.write(
        "%-*s %14s %14s %9s\n"
        % (width, "metric", "baseline", "current", "delta")
    )
    for section, metric, direction in METRICS:
        base = baseline.get(section, {}).get(metric)
        cur = current.get(section, {}).get(metric)
        label = "%s.%s" % (section, metric)
        if base is None or cur is None:
            out.write("%-*s %14s %14s %9s\n" % (
                width, label,
                "-" if base is None else "%.4g" % base,
                "-" if cur is None else "%.4g" % cur,
                "n/a",
            ))
            continue
        delta = (cur - base) / base * 100.0 if base else float("inf")
        better = delta <= 0 if direction == "down" else delta >= 0
        out.write("%-*s %14.4g %14.4g %+8.1f%% %s\n" % (
            width, label, base, cur, delta, "" if better else "(worse)"
        ))


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Print a non-gating baseline-vs-current perf "
                    "snapshot comparison."
    )
    parser.add_argument("baseline", help="committed snapshot (BENCH_dse.json)")
    parser.add_argument("current", help="snapshot from this run")
    args = parser.parse_args(argv)
    compare(_load(args.baseline), _load(args.current))
    print("\n(non-gating: shared-runner noise; correctness assertions "
          "run inside bench_dse.py)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
