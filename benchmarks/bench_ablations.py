"""Ablation benches for the design choices DESIGN.md calls out.

A1 — two-phase vs single-phase row writes (the shared-source-line
     constraint that sets nominal write latency);
A2 — iso-area vs iso-capacity STT-MRAM L2 (where the LITTLE-cluster
     speedup actually comes from);
A3 — variation-source decomposition: which sigma drives the Table-1
     write-latency spread (CMOS drive vs magnetic CD vs MgO RA);
A4 — retention/scrub ablation: cache-grade vs retention-grade pillar.
"""

import dataclasses

import numpy as np
import pytest
from conftest import save_artifact

from repro.archsim import PARSEC_KERNELS
from repro.magpie import MagpieFlow, Scenario
from repro.pdk import ProcessDesignKit
from repro.pdk.variation import CMOSVariation, MTJVariation, ProcessVariation
from repro.utils.table import Table
from repro.vaet import RetentionFaultModel, VAETSTT


def test_a1_two_phase_write(benchmark, vaet45):
    """Write latency decomposition: the 2x pulse is the dominant term."""

    def compute():
        leaf = vaet45.nvsim.subarray.timing()
        bank = vaet45.nvsim.bank.timing()
        return leaf, bank

    leaf, bank = benchmark.pedantic(compute, rounds=1, iterations=1)
    single_phase = bank.overhead_delay + leaf.wordline_delay + leaf.bitline_delay + leaf.write_pulse
    two_phase = bank.overhead_delay + leaf.write_latency
    table = Table(
        ["model", "write latency (ns)"],
        title="A1 — single- vs two-phase row write",
    )
    table.add_row(["single-phase (hypothetical)", single_phase * 1e9])
    table.add_row(["two-phase (shared SL, used)", two_phase * 1e9])
    save_artifact("ablation_a1_write_phases.txt", table.render())
    # The phase split accounts for most of the nominal write latency.
    assert two_phase - single_phase == pytest.approx(leaf.write_pulse, rel=1e-6)
    assert leaf.write_pulse > 0.3 * two_phase


def test_a2_iso_area_vs_iso_capacity(benchmark):
    """The LITTLE speedup needs the density bonus, not just STT."""
    flow = MagpieFlow(node_nm=45)
    workload = PARSEC_KERNELS["bodytrack"]

    def compute():
        reference = flow.run_one(workload, Scenario.FULL_SRAM)
        iso_area = flow.run_one(workload, Scenario.LITTLE_L2_STT)
        # iso-capacity: swap the tech but keep the SRAM capacity.
        soc = flow.build_soc(Scenario.LITTLE_L2_STT)
        base = flow.build_soc(Scenario.FULL_SRAM)
        iso_cap_soc = dataclasses.replace(
            soc,
            little=dataclasses.replace(
                soc.little, l2_mb=base.little.l2_mb
            ),
        )
        from repro.archsim.simulator import simulate
        from repro.mcpat import estimate_energy
        from repro.archsim.stats import ActivityReport

        report = ActivityReport.parse(simulate(iso_cap_soc, workload).render())
        iso_cap_energy = estimate_energy(iso_cap_soc, report)
        return reference, iso_area, report, iso_cap_energy

    reference, iso_area, iso_cap_report, iso_cap_energy = benchmark.pedantic(
        compute, rounds=1, iterations=1
    )
    table = Table(
        ["configuration", "exec time ratio", "energy ratio"],
        title="A2 — iso-area vs iso-capacity STT L2 (bodytrack, LITTLE)",
    )
    ref_energy = reference.energy
    table.add_row(["Full-SRAM", 1.0, 1.0])
    table.add_row(
        [
            "STT iso-capacity (no density bonus)",
            iso_cap_energy.exec_time / ref_energy.exec_time,
            iso_cap_energy.total_energy / ref_energy.total_energy,
        ]
    )
    table.add_row(
        [
            "STT iso-area (4x capacity)",
            iso_area.energy.exec_time / ref_energy.exec_time,
            iso_area.energy.total_energy / ref_energy.total_energy,
        ]
    )
    save_artifact("ablation_a2_iso_area.txt", table.render())
    # Without the capacity bonus STT slows the node down; with it,
    # the node speeds up — the whole Fig. 12 story.
    assert iso_cap_energy.exec_time > ref_energy.exec_time
    assert iso_area.energy.exec_time < ref_energy.exec_time
    # Finding: for the *small* LITTLE L2, the iso-capacity swap is
    # energy-neutral (the longer runtime burns the leakage saving);
    # the density bonus is what turns the scenario into a win.
    assert iso_cap_energy.total_energy < 1.05 * ref_energy.total_energy
    assert iso_area.energy.total_energy < 0.85 * ref_energy.total_energy


def test_a3_variation_source_decomposition(benchmark, table1_array):
    """Which sigma drives the write-latency spread?"""

    def run_with(cmos_sigma, cd_sigma, mgo_sigma):
        pdk = ProcessDesignKit.for_node(45)
        variation = ProcessVariation(
            cmos=CMOSVariation(k_prime_sigma_rel=cmos_sigma),
            mtj=MTJVariation(
                diameter_sigma_rel=cd_sigma, mgo_thickness_sigma_rel=mgo_sigma
            ),
        )
        pdk = dataclasses.replace(pdk, variation=variation)
        tool = VAETSTT(pdk, table1_array)
        return tool.estimate(num_words=1500).write_latency.std

    def compute():
        full = run_with(0.17, 0.027, 0.0145)
        no_cmos = run_with(1e-4, 0.027, 0.0145)
        no_cd = run_with(0.17, 1e-4, 0.0145)
        no_mgo = run_with(0.17, 0.027, 1e-4)
        stochastic_only = run_with(1e-4, 1e-4, 1e-4)
        return full, no_cmos, no_cd, no_mgo, stochastic_only

    full, no_cmos, no_cd, no_mgo, stochastic_only = benchmark.pedantic(
        compute, rounds=1, iterations=1
    )
    table = Table(
        ["population", "write latency sigma (ns)"],
        title="A3 — variation-source decomposition (45 nm)",
    )
    table.add_row(["all sources", full * 1e9])
    table.add_row(["w/o CMOS drive sigma", no_cmos * 1e9])
    table.add_row(["w/o magnetic CD sigma", no_cd * 1e9])
    table.add_row(["w/o MgO RA sigma", no_mgo * 1e9])
    table.add_row(["stochastic (thermal) only", stochastic_only * 1e9])
    save_artifact("ablation_a3_variation_sources.txt", table.render())
    # Every process knob contributes on top of the stochastic floor;
    # removing the CMOS drive sigma moves the total the most.
    assert stochastic_only < full
    assert no_cmos < full
    assert (full - no_cmos) > (full - no_mgo)


def test_a4_retention_grades(benchmark, table1_array):
    """Cache-grade (Table-1 pillar) vs retention-grade pillar."""

    def compute():
        cache = VAETSTT(ProcessDesignKit.for_node(45), table1_array)
        storage = VAETSTT(
            ProcessDesignKit.for_node(45, pillar_diameter=48e-9), table1_array
        )
        rows = []
        for label, tool in (("cache-grade 40 nm", cache), ("retention-grade 48 nm", storage)):
            model = RetentionFaultModel(
                tool.error_rates(), ecc_correct_bits=1, screen_quantile=0.001
            )
            ic0 = tool.nvsim.subarray._switching.critical_current
            rows.append(
                (
                    label,
                    float(np.mean(tool.error_rates().cells.delta)),
                    ic0 * 1e6,
                    model.per_bit_flip_probability(86400.0),
                )
            )
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    table = Table(
        ["pillar", "mean Delta", "I_c0 (uA)", "per-bit flips/day"],
        title="A4 — retention vs write-current trade (the Sec. I rule)",
    )
    for row in rows:
        table.add_row([row[0], row[1], row[2], "%.2e" % row[3]])
    save_artifact("ablation_a4_retention_grades.txt", table.render())
    cache_row, storage_row = rows
    assert storage_row[1] > cache_row[1]          # more Delta
    assert storage_row[2] > cache_row[2]          # costs write current
    assert storage_row[3] < cache_row[3]          # buys retention
