"""Shared fixtures for the benchmark harness.

Each benchmark regenerates one table or figure of the paper.  The
rendered artefact is printed and also written to benchmarks/output/ so
the paper-vs-measured comparison of EXPERIMENTS.md can be refreshed.
"""

import pytest

from artifacts import OUTPUT_DIR, save_artifact  # noqa: F401  (re-export)
from repro.nvsim import MemoryConfig
from repro.pdk import ProcessDesignKit
from repro.vaet import VAETSTT


@pytest.fixture(scope="session")
def table1_array():
    """The paper's 1024x1024 evaluation array (full-row access)."""
    return MemoryConfig(
        rows=1024, cols=1024, word_bits=1024, subarray_rows=256, subarray_cols=256
    )


@pytest.fixture(scope="session")
def vaet45(table1_array):
    """VAET-STT bound to the 45 nm node (shared across benchmarks)."""
    return VAETSTT(ProcessDesignKit.for_node(45), table1_array)


@pytest.fixture(scope="session")
def vaet65(table1_array):
    """VAET-STT bound to the 65 nm node."""
    return VAETSTT(ProcessDesignKit.for_node(65), table1_array)
