"""Fig. 8 — effect of ECC correction capability on write latency.

At a WER target of 1e-18: "there is a drastic improvement in latency by
using an ECC with one-bit error correction.  However, the improvement
in latency for higher bit error correction is comparatively less."
"""

from conftest import save_artifact

from repro.utils.table import Table

WER_TARGET = 1e-18
MAX_CORRECTION = 4


def test_fig8_ecc_vs_write_latency(benchmark, vaet45):
    ecc = vaet45.ecc()

    def compute():
        return ecc.sweep(MAX_CORRECTION, WER_TARGET)

    points = benchmark.pedantic(compute, rounds=1, iterations=1)
    table = Table(
        [
            "corrected bits",
            "write latency (ns)",
            "pulse (ns)",
            "per-bit WER budget",
            "parity bits",
        ],
        title="Fig. 8 — ECC vs write latency, WER 1e-18, 45 nm",
    )
    for point in points:
        table.add_row(
            [
                point.correct_bits,
                point.total_latency * 1e9,
                point.pulse_width * 1e9,
                "%.1e" % point.per_bit_wer,
                point.codeword_bits - vaet45.config.word_bits,
            ]
        )
    save_artifact("fig8_ecc.txt", table.render())

    latencies = [p.total_latency for p in points]
    assert all(a > b for a, b in zip(latencies, latencies[1:]))
    # Drastic first step, diminishing afterwards.
    first_gain = latencies[0] - latencies[1]
    later_gains = [a - b for a, b in zip(latencies[1:], latencies[2:])]
    assert first_gain > 1.5 * max(later_gains)
    assert latencies[0] / latencies[1] > 1.5
