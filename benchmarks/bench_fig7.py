"""Fig. 7 — overall read and write latencies vs target RER/WER.

The paper sweeps target error rates {1e-5, 1e-10, 1e-15}: tighter
targets require larger timing margins, so both latencies grow steeply.
"""

from conftest import save_artifact

from repro.utils.table import Table

TARGETS = (1e-5, 1e-10, 1e-15)


def test_fig7_write_latency_vs_wer(benchmark, vaet45):
    analysis = vaet45.error_rates()

    def compute():
        return [analysis.write_margin(target) for target in TARGETS]

    margins = benchmark.pedantic(compute, rounds=1, iterations=1)
    table = Table(
        ["target WER", "pulse width (ns)", "overall write latency (ns)"],
        title="Fig. 7 (write) — latency vs WER, 45 nm",
    )
    for margin in margins:
        table.add_row(
            [
                "%.0e" % margin.wer_target,
                margin.pulse_width * 1e9,
                margin.total_latency * 1e9,
            ]
        )
    save_artifact("fig7_write.txt", table.render())
    latencies = [m.total_latency for m in margins]
    assert latencies[0] < latencies[1] < latencies[2]
    # Tens of nanoseconds at tight targets, as in the figure.
    assert 10e-9 < latencies[0] < latencies[2] < 200e-9


def test_fig7_read_latency_vs_rer(benchmark, vaet45):
    analysis = vaet45.error_rates()

    def compute():
        return [analysis.read_margin(target) for target in TARGETS]

    margins = benchmark.pedantic(compute, rounds=1, iterations=1)
    table = Table(
        ["target RER", "sense time (ns)", "overall read latency (ns)"],
        title="Fig. 7 (read) — latency vs RER, 45 nm",
    )
    for margin in margins:
        table.add_row(
            [
                "%.0e" % margin.rer_target,
                margin.sense_time * 1e9,
                margin.total_latency * 1e9,
            ]
        )
    save_artifact("fig7_read.txt", table.render())
    latencies = [m.total_latency for m in margins]
    assert latencies[0] < latencies[1] < latencies[2]
    assert latencies[2] < 10e-9  # reads stay nanosecond-scale
