"""Calibrate the analytic low-fidelity screen against the full model.

The multi-fidelity ladder (:mod:`repro.dse.fidelity`) promotes points
by their *low-fidelity* Pareto rank, so its correctness budget is the
analytic NVSim-class estimator's error distribution relative to the
variation-aware Monte-Carlo evaluator.  This harness sweeps the same
design points at both fidelities through ``explore_memory``, joins the
records point-by-point, and reports the mean / p95 relative error and
the rank agreement per objective — the NVSim-vs-measured comparison
pattern of OpenNVRAM's ``nvsim_comparison``, applied to our own two
fidelities.

Runs two ways:

* under pytest (``-m bench``), asserting the screen stays usable — the
  rank ordering of every ladder objective must correlate strongly;
* as a plain script for artefact capture::

      PYTHONPATH=src python benchmarks/calibrate_fidelity.py

Either way the error table lands in
``benchmarks/output/calibrate_fidelity.json``.
"""

import argparse
import json
import os
import sys

import numpy as np

try:
    import pytest
except ImportError:  # script mode works without pytest installed
    pytest = None

sys.path.insert(0, os.path.dirname(__file__))
from artifacts import save_artifact  # noqa: E402

from repro.dse import ParameterSpace, explore_memory  # noqa: E402

#: Objectives the error table covers (the ladder defaults plus area).
OBJECTIVES = (
    "write_latency", "read_latency",
    "write_energy", "read_energy",
    "area", "edp_proxy",
)

SETTINGS = dict(num_words=200, error_population=10_000)

if pytest is not None:
    pytestmark = [pytest.mark.bench, pytest.mark.slow]


def calibration_space() -> ParameterSpace:
    """12 points: organisation x word width x reliability target."""
    space = ParameterSpace()
    space.add("subarray_rows", [128, 256, 512])
    space.add("word_bits", [128, 256])
    space.add("wer_target", [1e-9, 1e-12])
    return space


def _join_key(record, axes):
    return tuple(record[name] for name in axes)


def _rank_correlation(low, high):
    """Tie-aware Spearman rank correlation of two aligned vectors.

    Ties are expected — the analytic screen cannot see the reliability
    axes, so points differing only in ``wer_target`` share one
    low-fidelity estimate — and must get average ranks, not
    argsort-order ranks, or the correlation is pure noise.  A constant
    vector (e.g. the screen's area over organisation-only axes)
    correlates 0 with anything varying.
    """
    from scipy import stats

    low_ranks = stats.rankdata(low)
    high_ranks = stats.rankdata(high)
    if np.ptp(low_ranks) == 0 or np.ptp(high_ranks) == 0:
        return 1.0 if np.array_equal(low_ranks, high_ranks) else 0.0
    return float(np.corrcoef(low_ranks, high_ranks)[0, 1])


def calibrate(space=None, **settings):
    """Sweep both fidelities over the same points; summarise the error.

    Returns the summary dict: per-objective mean / p95 / max relative
    error ``|low - high| / high`` and the Spearman rank correlation,
    plus the wall-clock of each sweep (the cost gap the ladder banks).
    """
    space = space if space is not None else calibration_space()
    settings = dict(SETTINGS, **settings)
    axes = [axis.name for axis in space.axes]

    high = explore_memory(space, **settings)
    low = explore_memory(space, fidelity="low", **settings)
    high_rows = {_join_key(r, axes): r for r in high.records()}
    low_rows = {_join_key(r, axes): r for r in low.records()}
    joined = sorted(set(high_rows) & set(low_rows))
    assert joined, "no joinable points — both sweeps must share the space"

    summary = {
        "points": space.size,
        "joined": len(joined),
        "settings": {k: settings[k] for k in sorted(settings)},
        "high_wall_s": high.elapsed,
        "low_wall_s": low.elapsed,
        "low_speedup": high.elapsed / max(low.elapsed, 1e-9),
        "objectives": {},
    }
    for objective in OBJECTIVES:
        high_vals = np.array([high_rows[k][objective] for k in joined], float)
        low_vals = np.array([low_rows[k][objective] for k in joined], float)
        error = np.abs(low_vals - high_vals) / np.abs(high_vals)
        summary["objectives"][objective] = {
            "mean_rel_error": float(error.mean()),
            "p95_rel_error": float(np.percentile(error, 95)),
            "max_rel_error": float(error.max()),
            "rank_correlation": _rank_correlation(low_vals, high_vals),
        }
    return summary


def _check_and_save(name, summary):
    # The screen does not need to be *accurate* — the ladder re-scores
    # everything it promotes — but it must *order* the space usefully
    # under the ladder's default objectives (energy and the EDP proxy;
    # measured rho = 1.00 / 0.88 here).  Latency ordering is known to
    # degrade across word-width/ECC axes (measured rho = 0.24) — the
    # table records it so campaign authors widen promote_ranks or pick
    # screenable objectives; it is not gated.
    for objective in ("write_energy", "edp_proxy"):
        stats = summary["objectives"][objective]
        assert stats["rank_correlation"] >= 0.8, (
            "%s rank correlation %.2f — screening would mis-promote"
            % (objective, stats["rank_correlation"])
        )
    for objective in OBJECTIVES:
        assert np.isfinite(
            summary["objectives"][objective]["mean_rel_error"]
        )
    assert summary["low_speedup"] > 10.0, (
        "analytic screen only %.1fx faster" % summary["low_speedup"]
    )
    save_artifact(name, json.dumps(summary, indent=2))
    return summary


def test_fidelity_calibration():
    """The screen's error bars, measured and archived."""
    summary = calibrate()
    _check_and_save("calibrate_fidelity.json", summary)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Measure the analytic screen's error against the "
                    "Monte-Carlo evaluator (JSON artefact capture)."
    )
    parser.add_argument(
        "--num-words", type=int, default=SETTINGS["num_words"],
        help="Monte-Carlo words per point (default: %(default)s)",
    )
    parser.add_argument(
        "--error-population", type=int,
        default=SETTINGS["error_population"],
        help="Monte-Carlo error population (default: %(default)s)",
    )
    args = parser.parse_args(argv)
    summary = _check_and_save(
        "calibrate_fidelity.json",
        calibrate(
            num_words=args.num_words,
            error_population=args.error_population,
        ),
    )
    print(json.dumps(summary, indent=2))
    return 0


if __name__ == "__main__":
    sys.exit(main())
