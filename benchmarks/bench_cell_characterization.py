"""D2 — the Sec. IV-A circuit-level flow: SPICE + MDL -> cell config.

Characterises the 1T-1MTJ bit cell at both nodes through the real
transient simulator, reproducing the "switching current, delay and
energy values" extraction step of the MAGPIE flow diagram.
"""

import pytest
from conftest import save_artifact

from repro.cells import characterize_cell
from repro.pdk import ProcessDesignKit
from repro.utils.table import Table


@pytest.mark.parametrize("node", [45, 65])
def test_cell_characterization(benchmark, node):
    pdk = ProcessDesignKit.for_node(node)

    config = benchmark.pedantic(
        lambda: characterize_cell(pdk), rounds=1, iterations=1
    )
    save_artifact("d2_cell_%dnm.txt" % node, config.render())

    # Physical sanity of the extracted card.
    assert config.switching_current > 2.0 * config.critical_current
    assert 0.1e-9 < config.switching_delay < 6e-9
    assert config.read_energy < 0.1 * config.write_energy
    assert config.read_current < config.switching_current


def test_characterization_cross_node_comparison(benchmark):
    def compute():
        return (
            characterize_cell(ProcessDesignKit.for_node(45)),
            characterize_cell(ProcessDesignKit.for_node(65)),
        )

    c45, c65 = benchmark.pedantic(compute, rounds=1, iterations=1)
    table = Table(
        ["parameter", "45 nm", "65 nm"],
        title="D2 — characterised bit cell across nodes",
    )
    for label, a, b in [
        ("write current (uA)", c45.switching_current * 1e6, c65.switching_current * 1e6),
        ("switching delay (ns)", c45.switching_delay * 1e9, c65.switching_delay * 1e9),
        ("write energy (pJ)", c45.write_energy * 1e12, c65.write_energy * 1e12),
        ("read delay (ps)", c45.read_delay * 1e12, c65.read_delay * 1e12),
        ("read energy (fJ)", c45.read_energy * 1e15, c65.read_energy * 1e15),
        ("leakage (nA)", c45.leakage_current * 1e9, c65.leakage_current * 1e9),
    ]:
        table.add_row([label, a, b])
    save_artifact("d2_cross_node.txt", table.render())
    # Same MTJ at both nodes; CMOS-side leakage higher at 45 nm.
    assert c45.resistance_parallel == pytest.approx(c65.resistance_parallel)
    assert c45.leakage_current > c65.leakage_current
