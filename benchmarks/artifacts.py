"""Pytest-free artefact capture shared by benchmarks and script modes.

Lives outside conftest.py so ``python benchmarks/bench_dse.py --smoke``
works on a box with only numpy/scipy installed.
"""

import os

OUTPUT_DIR = os.path.join(os.path.dirname(__file__), "output")


def save_artifact(name: str, text: str) -> None:
    """Write a rendered table under benchmarks/output/ and print it."""
    os.makedirs(OUTPUT_DIR, exist_ok=True)
    path = os.path.join(OUTPUT_DIR, name)
    with open(path, "w") as handle:
        handle.write(text + "\n")
    print()
    print(text)
