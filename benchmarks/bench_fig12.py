"""Fig. 12 — execution time, energy and EDP per Parsec kernel.

Three STT scenarios normalised to Full-SRAM, 45 nm: only LITTLE-L2-STT
meaningfully reduces execution time (up to tens of percent); energy
improves in all scenarios; EDP favours STT overall.
"""

import pytest
from conftest import save_artifact

from repro.archsim import PARSEC_KERNELS
from repro.magpie import MagpieFlow, Scenario, fig12_relative

KERNELS = sorted(PARSEC_KERNELS)


@pytest.fixture(scope="module")
def flow():
    return MagpieFlow(node_nm=45)


def test_fig12_full_suite(benchmark, flow):
    def compute():
        return flow.run(workloads=KERNELS, scenarios=list(Scenario))

    results = benchmark.pedantic(compute, rounds=1, iterations=1)
    table = fig12_relative(results, KERNELS)
    save_artifact("fig12_parsec.txt", table.render())

    time_ratios = {}
    energy_ratios = {}
    edp_ratios = {}
    for kernel in KERNELS:
        reference = results[(kernel, Scenario.FULL_SRAM)].energy
        for scenario in (
            Scenario.LITTLE_L2_STT,
            Scenario.BIG_L2_STT,
            Scenario.FULL_L2_STT,
        ):
            candidate = results[(kernel, scenario)].energy
            time_ratios[(kernel, scenario)] = candidate.exec_time / reference.exec_time
            energy_ratios[(kernel, scenario)] = (
                candidate.total_energy / reference.total_energy
            )
            edp_ratios[(kernel, scenario)] = candidate.edp / reference.edp

    # Energy improves in every scenario for every kernel ...
    assert all(ratio < 1.0 for ratio in energy_ratios.values())
    # ... by at least 17 % somewhere (the paper's headline number).
    assert min(energy_ratios.values()) < 0.83
    # Only the LITTLE swap produces large time reductions.
    little_best = min(
        time_ratios[(k, Scenario.LITTLE_L2_STT)] for k in KERNELS
    )
    big_best = min(time_ratios[(k, Scenario.BIG_L2_STT)] for k in KERNELS)
    assert little_best < 0.80
    assert big_best > 0.93
    # EDP favours the full swap for the majority of the suite.
    wins = sum(
        1 for k in KERNELS if edp_ratios[(k, Scenario.FULL_L2_STT)] < 1.0
    )
    assert wins >= int(0.8 * len(KERNELS))
