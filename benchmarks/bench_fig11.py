"""Fig. 11 — energy breakdown by component, bodytrack on big.LITTLE.

Four scenarios: Full-SRAM (reference), LITTLE-L2-STT-MRAM,
big-L2-STT-MRAM, Full-L2-STT-MRAM, at 45 nm.
"""

import pytest
from conftest import save_artifact

from repro.magpie import MagpieFlow, Scenario, fig11_breakdown
from repro.mcpat import Component


@pytest.fixture(scope="module")
def flow():
    return MagpieFlow(node_nm=45)


def test_fig11_energy_breakdown_bodytrack(benchmark, flow):
    def compute():
        return flow.run(workloads=["bodytrack"], scenarios=list(Scenario))

    results = benchmark.pedantic(compute, rounds=1, iterations=1)
    table = fig11_breakdown(results, "bodytrack")
    save_artifact("fig11_bodytrack.txt", table.render())

    reference = results[("bodytrack", Scenario.FULL_SRAM)].energy
    full_stt = results[("bodytrack", Scenario.FULL_L2_STT)].energy
    # Every STT scenario lowers total energy (the paper's claim).
    for scenario in (
        Scenario.LITTLE_L2_STT,
        Scenario.BIG_L2_STT,
        Scenario.FULL_L2_STT,
    ):
        assert (
            results[("bodytrack", scenario)].energy.total_energy
            < reference.total_energy
        )
    # The L2 components shrink when swapped (leakage elimination).
    assert full_stt.component_total(Component.L2_BIG) < reference.component_total(
        Component.L2_BIG
    )
    assert full_stt.component_total(Component.L2_LITTLE) < reference.component_total(
        Component.L2_LITTLE
    )
    # SRAM L2 leakage is a first-order term of the reference platform.
    l2_share = (
        reference.component_total(Component.L2_BIG)
        + reference.component_total(Component.L2_LITTLE)
    ) / reference.total_energy
    assert l2_share > 0.15
