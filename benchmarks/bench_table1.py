"""Table 1 — nominal vs variation-aware latency/energy at 45 and 65 nm.

Paper values (1024x1024 array):

                      45 nm                   65 nm
                nominal  mu     sigma    nominal  mu     sigma
write lat (ns)  4.9      14.7   1.82     4.4      12.1   1.32
write E (pJ)    159.0    425.0  3.73     272.8    512.2  2.79
read lat (ns)   1.2      1.7    0.08     1.22     1.5    0.05
read E (pJ)     3.4      4.8    0.002    4.8      5.7    0.001
"""

from conftest import save_artifact


def _render(estimate, node):
    return estimate.render("Table 1 — %d nm, 1024x1024 STT-MRAM array" % node)


def test_table1_45nm(benchmark, vaet45):
    estimate = benchmark.pedantic(
        lambda: vaet45.estimate(num_words=4000), rounds=1, iterations=1
    )
    save_artifact("table1_45nm.txt", _render(estimate, 45))
    # Paper shape assertions: mu >> nominal for writes, tiny read sigma.
    assert estimate.write_latency.mean > 1.8 * estimate.nominal.write_latency
    assert estimate.write_energy.mean > 1.8 * estimate.nominal.write_energy
    assert estimate.read_latency.std < 0.1e-9
    assert estimate.read_energy.std < 0.05e-12


def test_table1_65nm(benchmark, vaet65):
    estimate = benchmark.pedantic(
        lambda: vaet65.estimate(num_words=4000), rounds=1, iterations=1
    )
    save_artifact("table1_65nm.txt", _render(estimate, 65))
    assert estimate.write_latency.mean > 1.8 * estimate.nominal.write_latency


def test_table1_sigma_ordering(benchmark, vaet45, vaet65):
    def compute():
        return vaet45.estimate(num_words=3000), vaet65.estimate(num_words=3000)

    e45, e65 = benchmark.pedantic(compute, rounds=1, iterations=1)
    # sigma(45 nm) > sigma(65 nm) for write latency; energies lower at
    # the smaller node (both claims of Sec. III).
    assert e45.write_latency.std > e65.write_latency.std
    assert e45.nominal.write_energy < e65.nominal.write_energy
    assert e45.nominal.read_energy < e65.nominal.read_energy
