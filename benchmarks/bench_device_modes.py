"""D1 — MSS device-mode characteristics (the Sec. I/II design claims).

The technology figures of the paper (stack schematics, wafer data) are
not data artefacts; what is reproducible is the *mode map* they imply:

* memory  — retention adjustable via diameter, I_c0 minimised for the
  retention spec;
* oscillator — ~30-degree tilt at H_bias = H_k/2, GHz output tunable
  with drive current;
* sensor  — linear out-of-plane transfer above H_k, with sensitivity
  set by the bias margin.
"""

import math

import numpy as np
import pytest
from conftest import save_artifact

from repro.core import (
    MSS_FREE_LAYER,
    PillarGeometry,
    SwitchingModel,
    ThermalStability,
    design_memory_mss,
    design_oscillator_mss,
    design_sensor_mss,
)
from repro.utils.table import Table

YEAR = 365.25 * 24 * 3600.0


def test_retention_vs_diameter(benchmark):
    """Memory mode: the retention-by-diameter design curve."""

    diameters = np.linspace(25e-9, 45e-9, 9)

    def compute():
        rows = []
        for diameter in diameters:
            geometry = PillarGeometry(diameter=diameter)
            stability = ThermalStability(MSS_FREE_LAYER, geometry)
            switching = SwitchingModel(MSS_FREE_LAYER, geometry)
            rows.append(
                (
                    diameter * 1e9,
                    stability.delta,
                    stability.retention_years(),
                    switching.critical_current * 1e6,
                )
            )
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    table = Table(
        ["diameter (nm)", "Delta", "retention (years)", "I_c0 (uA)"],
        title="D1a — retention & write current vs pillar diameter",
    )
    for row in rows:
        table.add_row(row)
    save_artifact("d1_retention_vs_diameter.txt", table.render())
    deltas = [r[1] for r in rows]
    currents = [r[3] for r in rows]
    assert all(a < b for a, b in zip(deltas, deltas[1:]))
    assert all(a < b for a, b in zip(currents, currents[1:]))


def test_oscillator_tuning(benchmark):
    """Oscillator mode: tilt, threshold and the f(I) tuning curve."""

    device = design_oscillator_mss()
    oscillator = device.oscillator_model()

    def compute():
        currents = np.linspace(1.1, 3.0, 8) * oscillator.threshold_current
        return [(i, oscillator.operating_point(i)) for i in currents]

    points = benchmark.pedantic(compute, rounds=1, iterations=1)
    table = Table(
        ["I (uA)", "zeta", "power", "f (GHz)", "linewidth (MHz)", "P_out (nW)"],
        title="D1b — STO operating points (tilt %.1f deg, f_FMR %.2f GHz)"
        % (math.degrees(oscillator.tilt_angle), oscillator.fmr_frequency / 1e9),
    )
    for current, op in points:
        table.add_row(
            [
                current * 1e6,
                op.supercriticality,
                op.power,
                op.frequency / 1e9,
                op.linewidth / 1e6,
                op.output_power * 1e9,
            ]
        )
    save_artifact("d1_oscillator.txt", table.render())
    assert math.degrees(oscillator.tilt_angle) == pytest.approx(30.0, abs=0.5)
    frequencies = [op.frequency for _, op in points]
    assert all(f > 0.5e9 for f in frequencies)


def test_sensor_transfer(benchmark):
    """Sensor mode: linear R(H_z) transfer and noise floor."""

    device = design_sensor_mss()
    sensor = device.sensor_model()

    def compute():
        fields = np.linspace(-1.0, 1.0, 11) * 0.5 * sensor.linear_range
        return fields, sensor.transfer_curve(fields)

    fields, curve = benchmark.pedantic(compute, rounds=1, iterations=1)
    table = Table(
        ["H_z (kA/m)", "R (ohm)"],
        title="D1c — sensor transfer (sensitivity %.3g ohm/(A/m), "
        "detectivity %.3g A/m/sqrt(Hz))" % (sensor.sensitivity, sensor.detectivity()),
    )
    for h, r in zip(fields, curve):
        table.add_row([h / 1e3, r])
    save_artifact("d1_sensor.txt", table.render())
    # Monotone everywhere; linear near mid-range (the angular transport
    # model compresses R(m_z) toward the endpoints, so a real MSS sensor
    # is operated in the central half of its Stoner-Wohlfarth range).
    diffs = np.diff(curve)
    assert np.all(diffs < 0.0)
    below_slope = (curve[5] - curve[3]) / (fields[5] - fields[3])
    above_slope = (curve[7] - curve[5]) / (fields[7] - fields[5])
    assert abs(above_slope / below_slope - 1.0) < 0.4
    # And the zero-field slope matches the reported sensitivity.
    zero_slope = (curve[6] - curve[4]) / (fields[6] - fields[4])
    assert zero_slope == pytest.approx(sensor.sensitivity, rel=0.15)


def test_one_stack_three_functions(benchmark):
    """The headline: one stack, three functions, layout-only deltas."""

    def compute():
        return (
            design_memory_mss(retention_seconds=10 * YEAR),
            design_oscillator_mss(),
            design_sensor_mss(),
        )

    memory, oscillator, sensor = benchmark.pedantic(compute, rounds=1, iterations=1)
    text = "\n\n".join(
        [memory.summary(), oscillator.summary(), sensor.summary()]
    )
    save_artifact("d1_mode_map.txt", text)
    assert memory.material == oscillator.material == sensor.material
    assert memory.barrier == oscillator.barrier == sensor.barrier
