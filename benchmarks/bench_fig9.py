"""Fig. 9 — read-disturb probability vs read period.

"Even though a higher read latency leads to a lower RER as per Fig. 7,
it will lead to increased read disturb probability" — the conflicting
requirement that fixes the read period.
"""

from conftest import save_artifact

from repro.utils.table import Table

READ_PERIODS = (1e-9, 2e-9, 5e-9, 10e-9, 20e-9, 50e-9, 100e-9)


def test_fig9_read_disturb_vs_period(benchmark, vaet45):
    disturb = vaet45.read_disturb()

    def compute():
        return disturb.sweep(READ_PERIODS)

    points = benchmark.pedantic(compute, rounds=1, iterations=1)
    table = Table(
        ["read period (ns)", "per-bit disturb", "per-word disturb"],
        title="Fig. 9 — read disturb vs read period, 45 nm",
    )
    for point in points:
        table.add_row(
            [
                point.read_period * 1e9,
                "%.3e" % point.per_bit_probability,
                "%.3e" % point.per_word_probability,
            ]
        )
    save_artifact("fig9_read_disturb.txt", table.render())

    probabilities = [p.per_bit_probability for p in points]
    assert all(a < b for a, b in zip(probabilities, probabilities[1:]))


def test_fig9_conflict_with_rer(benchmark, vaet45):
    """The cross-figure trade-off: longer reads cut RER, raise disturb."""
    analysis = vaet45.error_rates()
    disturb = vaet45.read_disturb()

    def compute():
        loose = analysis.read_margin(1e-5)
        tight = analysis.read_margin(1e-15)
        return (
            loose,
            tight,
            disturb.point(loose.sense_time),
            disturb.point(tight.sense_time),
        )

    loose, tight, disturb_loose, disturb_tight = benchmark.pedantic(
        compute, rounds=1, iterations=1
    )
    table = Table(
        ["RER target", "read period (ns)", "per-word disturb"],
        title="Fig. 7/9 conflict — RER margin vs disturb",
    )
    table.add_row(["1e-05", loose.sense_time * 1e9, "%.2e" % disturb_loose.per_word_probability])
    table.add_row(["1e-15", tight.sense_time * 1e9, "%.2e" % disturb_tight.per_word_probability])
    save_artifact("fig9_conflict.txt", table.render())
    assert tight.sense_time > loose.sense_time
    assert disturb_tight.per_word_probability > disturb_loose.per_word_probability
