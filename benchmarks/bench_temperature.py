"""Temperature study — the IoT operating envelope (-40 to +125 C).

The paper targets "autonomous battery-operated smart embedded systems";
those live outdoors and in engine bays.  Temperature moves every MSS
figure of merit in a different direction:

* Delta ~ 1/T: retention and read-disturb margins shrink when hot;
* I_c0 ~ Delta * T: roughly temperature-flat in this model, but the
  delivered CMOS drive weakens when hot;
* thermally-activated WER *improves* when hot (larger initial angle).

This bench sweeps the corner set the GREAT PDK would ship.
"""

from conftest import save_artifact

from repro.core import MSS_FREE_LAYER, PillarGeometry, SwitchingModel, ThermalStability
from repro.utils.table import Table
from repro.utils.units import celsius_to_kelvin

TEMPERATURES_C = (-40.0, 0.0, 25.0, 85.0, 125.0)


def test_temperature_envelope(benchmark):
    geometry = PillarGeometry(diameter=45e-9)

    def compute():
        rows = []
        for temp_c in TEMPERATURES_C:
            temp_k = celsius_to_kelvin(temp_c)
            stability = ThermalStability(MSS_FREE_LAYER, geometry, temp_k)
            switching = SwitchingModel(MSS_FREE_LAYER, geometry, temp_k)
            current = 60e-6
            rows.append(
                (
                    temp_c,
                    stability.delta,
                    stability.retention_years(),
                    switching.critical_current * 1e6,
                    switching.write_error_rate(10e-9, current),
                    switching.read_disturb_probability(5e-9, 8e-6),
                )
            )
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    table = Table(
        [
            "T (C)",
            "Delta",
            "retention (years)",
            "I_c0 (uA)",
            "WER @ 60uA/10ns",
            "disturb @ 8uA/5ns",
        ],
        title="Temperature envelope of the memory-mode MSS (45 nm pillar)",
    )
    for row in rows:
        table.add_row(
            [row[0], row[1], "%.3g" % row[2], row[3], "%.2e" % row[4], "%.2e" % row[5]]
        )
    save_artifact("temperature_envelope.txt", table.render())

    deltas = [row[1] for row in rows]
    retentions = [row[2] for row in rows]
    disturbs = [row[5] for row in rows]
    # Hot = less stable: Delta and retention fall, disturb rises.
    assert all(a > b for a, b in zip(deltas, deltas[1:]))
    assert all(a > b for a, b in zip(retentions, retentions[1:]))
    assert all(a <= b for a, b in zip(disturbs, disturbs[1:]))
    # The full envelope stays functional: Delta > 25 even at 125 C.
    assert deltas[-1] > 25.0


def test_temperature_wer_inversion(benchmark):
    """WER at fixed drive *improves* when hot (bigger initial angle) —
    the well-known STT-MRAM inversion between retention and writability."""
    geometry = PillarGeometry(diameter=45e-9)

    def compute():
        cold = SwitchingModel(MSS_FREE_LAYER, geometry, celsius_to_kelvin(-40.0))
        hot = SwitchingModel(MSS_FREE_LAYER, geometry, celsius_to_kelvin(125.0))
        current = 4.0 * cold.critical_current
        return cold.write_error_rate(8e-9, current), hot.write_error_rate(8e-9, current)

    wer_cold, wer_hot = benchmark.pedantic(compute, rounds=1, iterations=1)
    table = Table(
        ["corner", "WER @ 4x Ic0(cold), 8 ns"],
        title="Write-retention inversion across temperature",
    )
    table.add_row(["-40 C", "%.2e" % wer_cold])
    table.add_row(["+125 C", "%.2e" % wer_hot])
    save_artifact("temperature_wer_inversion.txt", table.render())
    assert wer_hot < wer_cold
