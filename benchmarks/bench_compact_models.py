"""Ref. [1] ablation — behavioural vs physical compact-model strategies.

The paper's PDK work builds on Jabeur et al.'s comparison of Verilog-A
MTJ modelling strategies.  This bench reruns that comparison on our
substrate: the event-based behavioural model against the LLGS-
integrating physical model, in accuracy (switching delay) and cost
(wall-clock per simulated write).
"""

import time

import pytest
from conftest import save_artifact

from repro.core import (
    BehavioralMTJModel,
    MSS_BARRIER,
    MSS_FREE_LAYER,
    PhysicalMTJModel,
    PillarGeometry,
    SwitchingModel,
)
from repro.utils.table import Table

GEOMETRY = PillarGeometry(diameter=45e-9)


def _behavioral_switch_time(current):
    model = BehavioralMTJModel(
        MSS_FREE_LAYER, GEOMETRY, MSS_BARRIER, initial_antiparallel=True
    )
    step = 10e-12
    elapsed = 0.0
    while elapsed < 50e-9:
        if model.advance(current, step):
            return elapsed + step
        elapsed += step
    return float("inf")


def _physical_switch_time(current):
    model = PhysicalMTJModel(
        MSS_FREE_LAYER, GEOMETRY, MSS_BARRIER, temperature=0.0, seed=12
    )
    step = 50e-12
    elapsed = 0.0
    while elapsed < 50e-9:
        if model.advance(current, step):
            return elapsed + step
        elapsed += step
    return float("inf")


def test_compact_model_strategy_comparison(benchmark):
    switching = SwitchingModel(MSS_FREE_LAYER, GEOMETRY)
    currents = [3.0, 5.0, 8.0]

    def compute():
        rows = []
        for multiple in currents:
            current = multiple * switching.critical_current
            analytic = switching.mean_switching_time(current)
            t0 = time.perf_counter()
            behavioral = _behavioral_switch_time(current)
            t_behavioral = time.perf_counter() - t0
            t0 = time.perf_counter()
            physical = _physical_switch_time(-current)
            t_physical = time.perf_counter() - t0
            rows.append(
                (multiple, analytic, behavioral, physical, t_behavioral, t_physical)
            )
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    table = Table(
        [
            "I/Ic0",
            "analytic (ns)",
            "behavioural (ns)",
            "physical LLG (ns)",
            "cpu behav (ms)",
            "cpu phys (ms)",
        ],
        title="Ref.[1] ablation — compact-model strategies",
    )
    for multiple, analytic, behavioral, physical, tb, tp in rows:
        table.add_row(
            [
                multiple,
                analytic * 1e9,
                behavioral * 1e9,
                physical * 1e9,
                tb * 1e3,
                tp * 1e3,
            ]
        )
    save_artifact("ref1_compact_models.txt", table.render())

    for multiple, analytic, behavioral, physical, tb, tp in rows:
        # The behavioural model tracks its own analytic backbone.
        assert behavioral == pytest.approx(analytic, rel=0.2)
        # The physical model agrees with the analytic delay within the
        # macrospin-model spread (factor ~2.5), and both switch.
        assert physical < 50e-9
        assert 0.2 < physical / analytic < 4.0
        # The behavioural strategy is much cheaper — the reason digital
        # flows use it (ref. [1]'s conclusion).
        assert tb < tp
