"""Quickstart: one MSS stack, three functions.

The headline of the paper in ~40 lines: design a memory cell from a
retention target, an RF oscillator from a bias-field rule, and a field
sensor from a larger pillar — all from the *same* material stack.

Run:  python examples/quickstart.py
"""


from repro import design_memory_mss, design_oscillator_mss, design_sensor_mss
from repro.utils.units import to_oersted

YEAR = 365.25 * 24 * 3600.0


def main():
    print("=" * 64)
    print("MSS quickstart — one stack, three functions")
    print("=" * 64)

    # 1. Memory: smallest pillar meeting a 10-year retention target,
    #    which also minimises the switching current (Sec. I design rule).
    memory = design_memory_mss(retention_seconds=10 * YEAR)
    switching = memory.switching_model()
    print()
    print(memory.summary())
    pulse = switching.pulse_width_for_wer(1e-9, 4.0 * switching.critical_current)
    print("  write pulse for WER 1e-9 at 4x I_c0: %.2f ns" % (pulse * 1e9))

    # 2. Oscillator: bias magnets sized for H_bias = H_k/2 -> 30-degree
    #    tilt, GHz output.
    oscillator_device = design_oscillator_mss()
    oscillator = oscillator_device.oscillator_model()
    print()
    print(oscillator_device.summary())
    op = oscillator.operating_point(2.0 * oscillator.threshold_current)
    print(
        "  at 2x threshold: f = %.2f GHz, linewidth = %.1f MHz, P_out = %.1f nW"
        % (op.frequency / 1e9, op.linewidth / 1e6, op.output_power * 1e9)
    )

    # 3. Sensor: larger pillar + bias slightly above H_k (~1 kOe) ->
    #    linear out-of-plane transfer.
    sensor_device = design_sensor_mss()
    sensor = sensor_device.sensor_model()
    print()
    print(sensor_device.summary())
    print(
        "  bias field: %.0f Oe; detectivity: %.3g A/m/sqrt(Hz)"
        % (to_oersted(sensor_device.bias_field), sensor.detectivity())
    )

    print()
    print("Same free layer in all three? ",
          memory.material == oscillator_device.material == sensor_device.material)


if __name__ == "__main__":
    main()
