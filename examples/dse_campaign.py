"""A 200+-point cross-layer DSE campaign through repro.dse.

Demonstrates the engine the paper's pre-fabrication exploration claim
rides on:

1. a declarative :class:`ParameterSpace` over memory organisation,
   reliability and PDK-node axes (216-point grid);
2. a cold campaign through the multiprocessing runner with the on-disk
   result cache filling up;
3. a warm re-run of the identical campaign — pure cache lookups,
   verified bit-identical and >= 5x faster;
4. the latency/energy/area Pareto frontier of the feasible set;
5. a system-level (MAGPIE) mini-campaign over kernels x scenarios.

A JSON summary (wall-clocks, cache hit rates, speedup, frontier) is
written next to this script as ``dse_campaign_summary.json``.

Run:  python examples/dse_campaign.py         (a few minutes cold,
                                               seconds warm)
"""

import json
import os
import shutil
import tempfile
import time

from repro.dse import ParameterSpace, explore_memory, explore_system
from repro.utils.table import Table


def build_space() -> ParameterSpace:
    """216 memory-level points: shape x word x reliability x ECC x node."""
    space = ParameterSpace()
    space.add("subarray_rows", [128, 256, 512])
    space.add("subarray_cols", [128, 256, 512])
    space.add("word_bits", [128, 256])
    space.add("wer_target", [1e-9, 1e-12, 1e-15])
    space.add("max_ecc_bits", [2, 3])
    space.add("node_nm", [45, 65])
    return space


def frontier_table(front) -> str:
    table = Table(
        ["subarray", "word", "node", "wer", "ecc_t",
         "write_lat (ns)", "write_E (pJ)", "area (mm^2)"],
        title="Pareto frontier (minimise write latency, write energy, area)",
    )
    for row in front:
        table.add_row(
            [
                "%dx%d" % (row["subarray_rows"], row["subarray_cols"]),
                row["word_bits"],
                row["node_nm"],
                "%.0e" % row["wer_target"],
                row["ecc_bits"],
                row["write_latency"] * 1e9,
                row["write_energy"] * 1e12,
                row["area"] * 1e6,
            ]
        )
    return table.render()


def main():
    space = build_space()
    cache_dir = tempfile.mkdtemp(prefix="repro-dse-")
    # Lighter Monte Carlo settings than the paper tables: a campaign
    # triages 216 points; the frontier survivors get the full 200k-cell
    # treatment afterwards.
    settings = dict(
        num_words=400, error_population=30_000, cache_dir=cache_dir
    )
    print("campaign: %d points, cache at %s" % (space.size, cache_dir))

    start = time.perf_counter()
    cold = explore_memory(space, **settings)
    cold_wall = time.perf_counter() - start
    print(
        "cold run:  %.1f s  (%d feasible, %d infeasible, %d errors, "
        "%d cache hits)"
        % (
            cold_wall,
            len(cold.records()),
            cold.infeasible(),
            len(cold.errors()),
            cold.cache_hits,
        )
    )

    start = time.perf_counter()
    warm = explore_memory(space, **settings)
    warm_wall = time.perf_counter() - start
    speedup = cold_wall / warm_wall
    identical = cold.records() == warm.records()
    print(
        "warm run:  %.2f s  (%d/%d cache hits)  speedup %.0fx  identical=%s"
        % (warm_wall, warm.cache_hits, len(warm.outcomes), speedup, identical)
    )
    if not identical:
        raise SystemExit("warm-cache records diverged from the cold run")

    front = cold.pareto()
    print()
    print(frontier_table(front))

    # System level: kernels x scenarios through the same engine.
    print()
    system = explore_system(
        workloads=["bodytrack", "canneal", "streamcluster"], cache_dir=cache_dir
    )
    best = system.pareto()
    print(
        "system campaign: %d cells in %.1f s; %d on the time/energy frontier"
        % (len(system.results), system.elapsed, len(best))
    )

    summary = {
        "points": space.size,
        "cold_wall_s": cold_wall,
        "warm_wall_s": warm_wall,
        "warm_speedup": speedup,
        "warm_identical": identical,
        "warm_cache_hit_rate": warm.cache_stats["hit_rate"],
        "feasible": len(cold.records()),
        "infeasible": cold.infeasible(),
        "errors": len(cold.errors()),
        "pareto_size": len(front),
        "system_cells": len(system.results),
    }
    out = os.path.join(os.path.dirname(__file__), "dse_campaign_summary.json")
    with open(out, "w") as handle:
        json.dump(summary, handle, indent=2)
    print("\nsummary written to %s" % out)
    shutil.rmtree(cache_dir, ignore_errors=True)


if __name__ == "__main__":
    main()
