"""IoT smart-sensor node: the paper's motivating application.

An autonomous battery-operated node built *entirely* from MSS devices:

* a sensor-mode MSS measures an out-of-plane magnetic field (e.g. a
  current-carrying wire underneath — a contactless current monitor);
* memory-mode MSS cells log the samples (non-volatile: zero standby
  power between wake-ups);
* an oscillator-mode MSS provides the RF carrier for the radio;
* a non-volatile flip-flop lets the MCU checkpoint state and power
  down completely between samples.

The script simulates a day of duty-cycled operation and reports the
energy ledger against an SRAM/quartz baseline.

Run:  python examples/iot_sensor_node.py
"""

import math

import numpy as np

from repro.cells import NonVolatileFlipFlop
from repro.core import design_memory_mss, design_oscillator_mss, design_sensor_mss
from repro.pdk import ProcessDesignKit

YEAR = 365.25 * 24 * 3600.0

#: Duty cycle: one measurement every 10 s, node awake for 5 ms each.
SAMPLE_PERIOD = 10.0
AWAKE_TIME = 5e-3
SAMPLES_PER_DAY = int(24 * 3600 / SAMPLE_PERIOD)


def measure_field(sensor, true_field, rng):
    """One noisy sensor measurement through the real transfer curve."""
    resistance = sensor.operating_point(true_field).resistance
    noise = rng.normal(0.0, sensor.detectivity() * math.sqrt(1e3))  # 1 kHz BW
    return sensor.digitize(resistance) + noise


def main():
    rng = np.random.default_rng(42)
    pdk = ProcessDesignKit.for_node(45)

    sensor = design_sensor_mss().sensor_model()
    memory = design_memory_mss(retention_seconds=10 * YEAR)
    oscillator = design_oscillator_mss().oscillator_model()
    checkpoint_ff = NonVolatileFlipFlop(pdk)

    switching = memory.switching_model()
    write_current = 4.0 * switching.critical_current
    write_pulse = switching.pulse_width_for_wer(1e-9, write_current)
    write_energy = switching.write_energy(
        write_pulse, write_current, memory.transport.parallel_resistance
    )

    print("IoT sensor node on the MSS platform (45 nm)")
    print("-" * 56)
    print("sensor:  range +/- %.2f kA/m, detectivity %.3g A/m/rtHz"
          % (sensor.linear_range / 1e3, sensor.detectivity()))
    print("memory:  %.0f nm pillar, retention %.0f years, %.1f fJ/bit write"
          % (memory.geometry.diameter * 1e9,
             memory.thermal_stability().retention_years(), write_energy * 1e15))
    osc_op = oscillator.operating_point(2.0 * oscillator.threshold_current)
    print("radio:   %.2f GHz carrier from the STO (P_out %.1f nW)"
          % (osc_op.frequency / 1e9, osc_op.output_power * 1e9))

    # --- simulate a day ------------------------------------------------
    true_field = lambda t: 2000.0 * math.sin(2 * math.pi * t / 86400.0)  # noqa: E731
    errors = []
    log_bits = 16  # one sample = 16-bit word
    for n in range(0, SAMPLES_PER_DAY, SAMPLES_PER_DAY // 144):
        t = n * SAMPLE_PERIOD
        h = true_field(t)
        estimate = measure_field(sensor, h, rng)
        errors.append(estimate - h)
    rms_error = float(np.sqrt(np.mean(np.square(errors))))

    # --- energy ledger ---------------------------------------------------
    ff_timings = checkpoint_ff.characterize()
    mcu_active_power = 1.2e-3            # 45 nm MCU core, active
    sram_standby_power = 35e-6           # retention SRAM + always-on FF
    radio_energy_per_tx = 4e-6           # one packet per 10 min

    awake_energy = mcu_active_power * AWAKE_TIME
    log_energy = log_bits * write_energy
    checkpoint_energy = 32 * (ff_timings.store_energy + ff_timings.restore_energy)
    per_sample_mss = awake_energy + log_energy + checkpoint_energy
    daily_mss = (
        SAMPLES_PER_DAY * per_sample_mss + (24 * 6) * radio_energy_per_tx
    )
    daily_sram = (
        SAMPLES_PER_DAY * (awake_energy + log_bits * 0.05e-12)
        + 86400.0 * sram_standby_power
        + (24 * 6) * radio_energy_per_tx
    )

    print()
    print("field tracking RMS error: %.1f A/m (%.2f %% of range)"
          % (rms_error, 100.0 * rms_error / sensor.linear_range))
    print("daily energy, MSS node (power-gated):  %.1f mJ" % (daily_mss * 1e3))
    print("daily energy, SRAM baseline (standby): %.1f mJ" % (daily_sram * 1e3))
    print("savings: %.0f %%  (non-volatility removes the standby floor)"
          % (100.0 * (1.0 - daily_mss / daily_sram)))

    # Checkpoint/restore round-trip actually works:
    checkpoint_ff.clock(True)
    checkpoint_ff.store()
    checkpoint_ff.power_down()
    assert checkpoint_ff.restore() is True
    print("NVFF checkpoint/restore round-trip: OK")


if __name__ == "__main__":
    main()
