"""VAET-STT memory design exploration (the Sec. III workflow).

Walks the variation-aware design loop a memory architect would run
before tape-out:

1. Table-1-style nominal vs (mu, sigma) estimation at 45 and 65 nm;
2. timing margins for a ladder of RER/WER targets (Fig. 7);
3. the ECC-vs-margin trade at WER 1e-18 (Fig. 8);
4. the read-disturb ceiling on the read period (Fig. 9);
5. a subarray-shape design-space sweep under all three constraints.

Run:  python examples/memory_explorer.py        (~20 s)
"""

from repro.nvsim import MemoryConfig
from repro.pdk import ProcessDesignKit
from repro.utils.table import Table
from repro.vaet import DesignConstraints, DesignSpaceExplorer, VAETSTT


def main():
    array = MemoryConfig(
        rows=1024, cols=1024, word_bits=1024, subarray_rows=256, subarray_cols=256
    )

    # 1. Table 1.
    for node in (45, 65):
        tool = VAETSTT(ProcessDesignKit.for_node(node), array)
        print(tool.estimate().render("Table 1 — %d nm" % node))
        print()

    # 2. Fig. 7 margins at 45 nm.
    tool = VAETSTT(ProcessDesignKit.for_node(45), array)
    analysis = tool.error_rates()
    table = Table(
        ["target", "write latency (ns)", "read latency (ns)"],
        title="Fig. 7 — margined latencies vs error-rate target",
    )
    for target in (1e-5, 1e-10, 1e-15):
        write = analysis.write_margin(target)
        read = analysis.read_margin(target)
        table.add_row(
            ["%.0e" % target, write.total_latency * 1e9, read.total_latency * 1e9]
        )
    print(table.render())
    print()

    # 3. Fig. 8 ECC trade.
    ecc_table = Table(
        ["ECC t", "write latency (ns)", "storage overhead"],
        title="Fig. 8 — ECC vs write latency at WER 1e-18",
    )
    for point in tool.ecc().sweep(4, 1e-18):
        ecc_table.add_row(
            [
                point.correct_bits,
                point.total_latency * 1e9,
                "%.1f %%" % (100.0 * point.storage_overhead),
            ]
        )
    print(ecc_table.render())
    print()

    # 4. Fig. 9 ceiling: the weak-cell tail dominates read disturb, so
    #    the per-access budget (absorbed by scrubbing + the write-path
    #    ECC) sits far above the RER target.
    disturb = tool.read_disturb()
    ceiling = disturb.max_read_period(1e-4)
    print("read-disturb ceiling for a 1e-4 per-word budget: %.2f ns"
          % (ceiling * 1e9))
    rer_floor = analysis.read_margin(1e-9).sense_time
    print("RER floor for a 1e-9 target: %.2f ns" % (rer_floor * 1e9))
    print("=> the read period must sit between the two — the Sec. III")
    print("   'conflicting requirements' window.")
    print()

    # 5. Design-space sweep.
    explorer = DesignSpaceExplorer(
        ProcessDesignKit.for_node(45),
        array,
        DesignConstraints(wer_target=1e-15, rer_target=1e-12),
    )
    points = explorer.sweep_subarrays((128, 256, 512))
    print(DesignSpaceExplorer.render(points))


if __name__ == "__main__":
    main()
