"""SPICE playground: watch a single bit-cell write at waveform level.

Builds the 1T-1MTJ write test bench from the cell library, runs the
transient through the MNA simulator and prints an ASCII oscillogram of
the source-line voltage and the cell current, with the switching event
marked — the view a circuit designer gets from the paper's
PDK -> SPICE -> MDL loop.

Run:  python examples/spice_playground.py
"""

import numpy as np

from repro.cells import build_write_cell
from repro.pdk import ProcessDesignKit
from repro.spice import CrossEvent, Delay, MeasurementScript, transient


def ascii_plot(times, values, label, width=64, height=10):
    """Tiny dependency-free strip chart."""
    lo, hi = float(np.min(values)), float(np.max(values))
    span = hi - lo or 1.0
    columns = np.interp(
        np.linspace(times[0], times[-1], width), times, values
    )
    rows = []
    for level in range(height, -1, -1):
        threshold = lo + span * level / height
        line = "".join("#" if v >= threshold else " " for v in columns)
        rows.append("%8.3g |%s" % (threshold, line))
    rows.append(" " * 9 + "+" + "-" * width)
    rows.append(" " * 10 + "%-.3g ns%*s%.3g ns"
                % (times[0] * 1e9, width - 12, "", times[-1] * 1e9))
    return "\n".join(["%s:" % label] + rows)


def main():
    pdk = ProcessDesignKit.for_node(45)
    handles = build_write_cell(pdk, write_to_antiparallel=True)
    result = transient(
        handles.circuit, stop_time=9e-9, timestep=2e-11,
        record_currents_of=["vsl"],
    )
    waveforms = result.waveforms

    print(ascii_plot(waveforms.times, waveforms.trace("v(sl)").values, "v(SL) [V]"))
    print()
    current = np.abs(waveforms.trace("i(vsl)").values)
    print(ascii_plot(waveforms.times, current * 1e6, "|i(cell)| [uA]"))
    print()

    if handles.mtj.switch_log:
        t_switch, now_ap = handles.mtj.switch_log[0]
        print("MTJ switched to %s at t = %.2f ns"
              % ("AP" if now_ap else "P", t_switch * 1e9))

    vdd = pdk.tech.vdd
    mdl = MeasurementScript(
        [
            Delay(
                "wl_to_switch",
                CrossEvent("v(wl)", vdd / 2, "rise", 1),
                CrossEvent("i(vsl)", -30e-6, "fall", 1),
            ),
        ]
    )
    measurements = mdl.run(waveforms)
    print("MDL: WL-rise to 30uA cell-current delay = %.2f ns"
          % (measurements["wl_to_switch"] * 1e9))


if __name__ == "__main__":
    main()
