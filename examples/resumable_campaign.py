"""Resumable + adaptive campaigns: kill one mid-run, pick it back up.

Demonstrates the checkpointing and adaptive-sampling layers on top of
the ``repro.dse`` engine:

1. start a 24-point memory campaign pinned to a campaign directory
   (cache + journal), and "kill" it after 8 points by raising from the
   progress callback — exactly what SIGKILL at a worse moment leaves
   behind on disk;
2. ``resume=True`` the identical call: the finished points replay from
   the cache/journal (zero re-evaluation) and the campaign completes,
   with records identical to an uninterrupted run;
3. run an *adaptive* campaign over a larger space: a
   successive-halving zoom that spends its budget around the EDP-best
   region instead of covering the whole grid.

The same flow is available from the command line::

    python -m repro.dse run spec.json --dir campaign/
    python -m repro.dse status --dir campaign/
    python -m repro.dse resume spec.json --dir campaign/

Run:  python examples/resumable_campaign.py     (about a minute)
"""

import shutil
import tempfile

from repro.dse import (
    CampaignState,
    ParameterSpace,
    explore_memory,
    run_memory_campaign,
)
from repro.dse.checkpoint import JOURNAL_NAME

SETTINGS = dict(num_words=200, error_population=10_000)


class Killed(Exception):
    """Stands in for SIGKILL / OOM / a pre-empted spot instance."""


def main():
    space = ParameterSpace()
    space.add("subarray_rows", [128, 256, 512])
    space.add("word_bits", [128, 256])
    space.add("wer_target", [1e-9, 1e-12])
    space.add("node_nm", [45, 65])

    campaign_dir = tempfile.mkdtemp(prefix="repro-resume-")
    print("campaign: %d points, directory %s" % (space.size, campaign_dir))

    # -- 1. start, then die after 8 points ------------------------------
    def die_at_8(event):
        if event.done == 8:
            raise Killed()

    try:
        run_memory_campaign(space, campaign_dir, progress=die_at_8, **SETTINGS)
    except Killed:
        pass
    journal = CampaignState.load("%s/%s" % (campaign_dir, JOURNAL_NAME))
    print(
        "killed:    %d/%d points journaled (%d failed)"
        % (journal.done, journal.total, journal.failed)
    )

    # -- 2. resume exactly where it stopped ------------------------------
    resumed = run_memory_campaign(space, campaign_dir, resume=True, **SETTINGS)
    print(
        "resumed:   %d points in %.1f s — %d served from cache, "
        "%d evaluated fresh"
        % (
            len(resumed.outcomes),
            resumed.elapsed,
            sum(1 for o in resumed.outcomes if o.from_cache),
            sum(1 for o in resumed.outcomes if not o.from_cache),
        )
    )

    # Prove it: an uninterrupted run in a fresh directory is identical.
    reference_dir = tempfile.mkdtemp(prefix="repro-ref-")
    reference = run_memory_campaign(space, reference_dir, **SETTINGS)
    identical = resumed.records() == reference.records()
    print("identical to uninterrupted run: %s" % identical)
    if not identical:
        raise SystemExit("resumed records diverged from the reference run")

    # -- 3. adaptive: zoom instead of sweeping ---------------------------
    big = ParameterSpace()
    big.add("subarray_rows", [128, 256, 512])
    big.add("subarray_cols", [128, 256, 512])
    big.add("word_bits", [128, 256])
    big.add("wer_target", [1e-9, 1e-12, 1e-15])
    adaptive = explore_memory(
        big,
        sampler="adaptive",
        sampler_options=dict(batch=8, rounds=3, keep=0.4, seed=0),
        objectives=("edp_proxy",),
        cache_dir=campaign_dir + "/cache",
        **SETTINGS,
    )
    trace = adaptive.adaptive
    print(
        "adaptive:  %d of %d grid points evaluated over %d rounds; "
        "best EDP %.3e"
        % (trace.evaluations, big.size, len(trace.rounds), trace.best_score)
    )
    for entry in trace.rounds:
        print(
            "           round %d: space %d -> batch %d, best %.3e"
            % (
                entry.index,
                entry.space_size,
                len(entry.points),
                entry.best_score,
            )
        )

    shutil.rmtree(campaign_dir, ignore_errors=True)
    shutil.rmtree(reference_dir, ignore_errors=True)


if __name__ == "__main__":
    main()
