"""Co-integration floor-planning: the price of 'one extra litho step'.

The MSS promise is sensors, oscillators and memory on one die.  The
two engineering taxes this script quantifies:

1. **Magnetic cross-talk** — a sensor's bias magnets leak stray field
   onto neighbouring memory pillars, eroding their barrier.  The
   keep-out radius is the floor-planning design rule.
2. **Retention grade** — the paper's 'adjustable retention by diameter'
   cuts both ways: the write-optimised (cache-grade) pillar needs
   scrubbing to hold data; the retention-grade pillar costs write
   current.  The script shows both points and the scrub schedule that
   makes the cache-grade array dependable.

Run:  python examples/cointegration_floorplan.py        (~15 s)
"""

import numpy as np

from repro.core import (
    CrosstalkAnalysis,
    MSS_FREE_LAYER,
    PillarGeometry,
    design_sensor_mss,
)
from repro.nvsim import MemoryConfig
from repro.pdk import ProcessDesignKit
from repro.utils.table import Table
from repro.vaet import RetentionFaultModel, VAETSTT


def crosstalk_study():
    sensor = design_sensor_mss()
    victim = PillarGeometry(diameter=45e-9)
    analysis = CrosstalkAnalysis(sensor.bias_magnets, MSS_FREE_LAYER, victim)

    table = Table(
        ["spacing (nm)", "victim Delta", "retention"],
        title="Stray field of the sensor bias magnets on a memory pillar",
    )
    for distance in (350e-9, 500e-9, 700e-9, 1000e-9, 2000e-9):
        delta = analysis.disturbed_delta(distance)
        retention = analysis.retention_at_distance(distance)
        label = (
            "%.1f days" % (retention / 86400.0)
            if retention < 3.15e7
            else "%.1f years" % (retention / 3.156e7)
        )
        table.add_row([distance * 1e9, delta, label])
    print(table.render())
    for budget in (0.99, 0.95, 0.90):
        print(
            "keep-out for %.0f %% Delta budget: %.0f nm"
            % (100 * budget, analysis.keep_out_distance(budget) * 1e9)
        )
    print()


def retention_study():
    array = MemoryConfig(
        rows=1024, cols=1024, word_bits=1024, subarray_rows=256, subarray_cols=256
    )
    table = Table(
        ["pillar", "mean Delta", "flips/bit/day", "scrub for 1e6 FIT"],
        title="Cache-grade vs retention-grade MSS arrays (45 nm, ECC t=1)",
    )
    for label, diameter in (("cache-grade 40 nm", 40e-9), ("retention-grade 48 nm", 48e-9)):
        pdk = ProcessDesignKit.for_node(45, pillar_diameter=diameter)
        tool = VAETSTT(pdk, array)
        model = RetentionFaultModel(
            tool.error_rates(), ecc_correct_bits=1, screen_quantile=0.001
        )
        daily = model.per_bit_flip_probability(86400.0)
        try:
            scrub = model.scrub_interval_for_fit(1e6)
            scrub_label = "%.1f min" % (scrub / 60.0) if scrub < 7200 else "%.1f h" % (scrub / 3600.0)
        except ValueError:
            scrub_label = "unreachable"
        table.add_row(
            [
                label,
                float(np.mean(model.analysis.cells.delta)),
                "%.2e" % daily,
                scrub_label,
            ]
        )
    print(table.render())
    print()
    print("The cache-grade array trades retention for write current — fine")
    print("for an L2 with scrubbing, not for unpowered data logging.")


def main():
    crosstalk_study()
    retention_study()


if __name__ == "__main__":
    main()
