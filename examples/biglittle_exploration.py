"""MAGPIE big.LITTLE hybrid-memory exploration (the Sec. IV workflow).

Reproduces the system-level study: four L2-technology scenarios on an
Exynos-5-like big.LITTLE platform across the Parsec-like kernel suite,
with the STT-MRAM L2 timing/energy wired in live from VAET-STT — the
full cross-layer flow of Fig. 10, as a script (MAGPIE is
"script-oriented" by design).

Run:  python examples/biglittle_exploration.py        (~10 s)
"""

from repro.archsim import PARSEC_KERNELS
from repro.magpie import MagpieFlow, Scenario, fig11_breakdown, fig12_relative


def main():
    flow = MagpieFlow(node_nm=45)

    # The memory-level records the flow derived (VAET-STT + NVSim).
    sram, stt = flow.memory_records()
    print("L2 macro records from the memory level:")
    for record in (sram, stt):
        print(
            "  %-9s read %5.2f ns  write %6.2f ns  leak %6.1f mW/MB  %5.2f mm2/MB"
            % (
                record.label,
                record.read_latency * 1e9,
                record.write_latency * 1e9,
                record.leakage_per_mb * 1e3,
                record.area_per_mb * 1e6,
            )
        )
    print(
        "  iso-area capacity factor: %.1fx"
        % (sram.area_per_mb / stt.area_per_mb)
    )
    print()

    # Fig. 11: component breakdown for bodytrack.
    results = flow.run(workloads=["bodytrack"])
    print(fig11_breakdown(results, "bodytrack").render())
    print()

    # Fig. 12: the full suite, normalised to Full-SRAM.
    kernels = sorted(PARSEC_KERNELS)
    results = flow.run(workloads=kernels)
    print(fig12_relative(results, kernels).render())
    print()

    # Headline numbers.
    best_time = min(
        (
            results[(k, Scenario.LITTLE_L2_STT)].energy.exec_time
            / results[(k, Scenario.FULL_SRAM)].energy.exec_time,
            k,
        )
        for k in kernels
    )
    best_energy = min(
        (
            results[(k, Scenario.FULL_L2_STT)].energy.total_energy
            / results[(k, Scenario.FULL_SRAM)].energy.total_energy,
            k,
        )
        for k in kernels
    )
    print("best exec-time reduction (LITTLE-L2-STT): %.0f %% on %s"
          % (100 * (1 - best_time[0]), best_time[1]))
    print("best energy reduction (Full-L2-STT): %.0f %% on %s"
          % (100 * (1 - best_energy[0]), best_energy[1]))


if __name__ == "__main__":
    main()
